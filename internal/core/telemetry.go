package core

import (
	"tridentsp/internal/telemetry"
)

// This file owns the system's telemetry spine (DESIGN §11): construction of
// the tracer + registry pair, the fast-path exit-reason counters, and the
// end-of-run metric snapshot. Everything here is off unless Config.Telemetry
// is set; a nil tracer costs one branch per would-be emission.

// initTelemetry builds the tracer and pre-registers the counters the hot
// path increments directly (registry lookups involve a map access, so the
// fast path holds *Counter values instead).
func (s *System) initTelemetry(opts telemetry.Options) {
	s.tel = telemetry.New(opts)
	reg := s.tel.Metrics()
	for r := telemetry.FPReason(0); r < telemetry.NumFPReasons; r++ {
		s.fpReasons[r] = reg.Counter("fastpath_exit_" + r.String())
	}
}

// Telemetry returns the system's tracer (nil when telemetry is off).
// Callers export events and metrics through it; Results deliberately does
// not grow telemetry fields, so differential tests keep comparing it.
func (s *System) Telemetry() *telemetry.Tracer { return s.tel }

// snapshotMetrics publishes the end-of-run statistics into the registry as
// gauges, so one metrics export carries both the hot-path counters and the
// summary numbers without Results growing fields. Called from results();
// re-running it just overwrites the gauges with fresher values.
func (s *System) snapshotMetrics() {
	reg := s.tel.Metrics()
	g := func(name string, v float64) { reg.Gauge(name).Set(v) }
	u := func(name string, v uint64) { g(name, float64(v)) }

	g("cycles", float64(s.thread.Now()))
	u("orig_instrs", s.origInstrs)
	u("ffwd_instrs", s.ffwdInstrs)
	u("committed_instrs", s.thread.Committed())

	m := &s.hier.Stats
	u("mem_loads", m.Loads)
	u("mem_stores", m.Stores)
	u("mem_l1_hits", m.L1Hits)
	u("mem_l2_hits", m.L2Hits)
	u("mem_l3_hits", m.L3Hits)
	u("mem_accesses", m.MemAccesses)
	u("mem_l1_misses", m.L1Misses())
	u("prefetches_issued", m.PrefetchesIssued)
	u("prefetches_redundant", m.PrefetchesRedundant)
	u("prefetches_dropped", m.PrefetchesDropped)
	u("wasted_prefetches", m.WastedPrefetches)
	g("total_load_latency", float64(m.TotalLoadLatency))
	g("total_miss_latency", float64(m.TotalMissLatency))

	lb := s.live.BlockStats()
	cb := s.cache.BlockStats()
	u("blockcache_hits", lb.Hits+cb.Hits)
	u("blockcache_rebuilds", lb.Rebuilds+cb.Rebuilds)
	u("blockcache_invalidations", lb.Invalidations+cb.Invalidations)

	// Three-tier engine residency (DESIGN §13). Engine-class: which tier
	// retired an instruction is path-dependent by nature, so these live in
	// the registry only and never migrate into Results.
	u("jit_compiles", lb.Compiles+cb.Compiles)
	u("jit_revalidations", lb.Revalidations+cb.Revalidations)
	for i, ts := range s.tiers {
		u("tier_"+tierNames[i]+"_instrs", ts.instrs)
		u("tier_"+tierNames[i]+"_cycles", ts.cycles)
	}

	u("traces_formed", s.stats.tracesFormed)
	u("traces_backed_out", s.stats.tracesBackedOut)
	u("traces_specialized", s.stats.tracesSpecialized)
	u("phase_clears", s.stats.phaseClears)
	u("apply_errors", s.stats.applyErrors)
	u("trace_traversals", s.stats.traceTraversal)
	u("misses_total", s.stats.missesTotal)
	u("misses_in_trace", s.stats.missesInTrace)
	u("misses_covered", s.stats.missesCovered)

	if s.cfg.Trident {
		g("helper_active_cycles", float64(s.helper.ActiveCycles))
		u("helper_invocations", s.helper.Invocations)
		u("helper_preemptions", s.helper.Preemptions)
		u("events_raised", s.queue.Raised)
		u("events_dropped", s.queue.Dropped)
		u("dlt_events", s.table.Events)
		u("dlt_evictions", s.table.Evictions)
		g("codecache_bytes", float64(s.cache.Size()))
		g("live_traces", float64(s.cache.LiveTraces()))
	}
	if s.hwp != nil {
		u("hwpref_rounds", s.hwp.Rounds())
		u("hwpref_switches", s.hwp.Switches())
		u("hwpref_decisions", s.hwp.DecisionCount())
		res := s.hwp.Residency()
		for i, name := range s.hwp.Names() {
			st := s.hwp.EngineStatsAt(i)
			u("hwpref_"+name+"_fills", st.Fills)
			u("hwpref_"+name+"_supplies", st.Supplies)
			u("hwpref_"+name+"_evicted_unused", st.EvictedUnused)
			u("hwpref_"+name+"_resident_loads", res[i])
		}
	}
	if s.opt != nil {
		u("prefetch_insertions", s.opt.Stats.Insertions)
		u("prefetch_repairs", s.opt.Stats.Repairs)
		u("prefetch_matured", s.opt.Stats.Matured)
		u("prefetches_placed", s.opt.Stats.PrefetchesPlaced)
		u("deref_chains_placed", s.opt.Stats.DerefChainsPlaced)
	}
	if s.chaosRun != nil {
		u("chaos_faults", s.chaosRun.Applied)
	}
	if s.monitor != nil {
		u("watchdog_probes", s.monitor.Ticks())
		u("invariant_violations", uint64(len(s.monitor.Violations())))
	}
}
