package core

import (
	"bytes"
	"testing"

	"tridentsp/internal/isa"
	"tridentsp/internal/program"
	"tridentsp/internal/trident"
)

// FuzzFastPathDifferential extends the repo's fuzz infrastructure (see
// internal/asm.FuzzAssemble) to the batch engine and the JIT tier: arbitrary
// bytes become a structured hot loop mixing ALU ops, loads, non-faulting
// loads, stores, prefetches, FDIVs, and data-dependent forward branches, and
// the program runs as a three-way oracle — slow path (reference), batch
// engine (JIT off), and JIT tier (threshold 0, so every block runs compiled).
// Any divergence in Results, final PC, the register file, or the
// memory-system statistics fails. The loop is hot by construction, so
// Trident forms traces over fuzz-chosen bodies and both engines execute them
// — covering member classifications (and slow-path exclusions like FDIV) the
// hand-written differential matrix cannot enumerate. Midway through, a
// PatchImm is applied identically to all three systems at an immediate-
// carrying instruction of a live trace: on the JIT system the compiled
// closure chain is resident at that point (threshold 0), so the patch must
// invalidate it — observed directly via CompiledAt — and the remainder of the
// run proves the rewritten word, not the stale chain, is what executes.
func FuzzFastPathDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x66, 0x99, 0xb3})                        // load/store/prefetch
	f.Add([]byte{0xc4, 0xd5, 0xe6, 0xf7})                  // fdiv + branches
	f.Add(bytes.Repeat([]byte{0x67}, 24))                  // load-dense body
	f.Add(bytes.Repeat([]byte{0x9a, 0x08, 0xd1, 0x3f}, 8)) // store/ldnf/branch mix
	seq := make([]byte, 64)
	for i := range seq {
		seq[i] = byte(i * 37)
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 192 {
			data = data[:192]
		}
		batch := DefaultConfig()
		batch.JIT = false
		jit := DefaultConfig()
		jit.JIT = true
		jit.JITThreshold = 0
		slow := DefaultConfig()
		slow.DisableFastPath = true
		sysB := NewSystem(batch, buildFuzzProgram(data))
		sysJ := NewSystem(jit, buildFuzzProgram(data))
		sysS := NewSystem(slow, buildFuzzProgram(data))
		systems := []*System{sysS, sysB, sysJ}

		// First half: let Trident form traces and the JIT compile them.
		for _, sys := range systems {
			sys.Run(15_000)
		}

		// Mid-run PatchImm, applied identically everywhere. The three systems
		// are bit-identical by construction, so a patch target picked off the
		// JIT system's code cache exists with the same content in all three.
		if pc, imm := fuzzPatchTarget(sysJ); pc != 0 {
			resident := sysJ.cache.CompiledAt(pc) != nil
			for _, sys := range systems {
				if err := sys.cache.PatchImm(pc, imm); err != nil {
					t.Fatalf("PatchImm(%#x, %d): %v", pc, imm, err)
				}
			}
			if resident && sysJ.cache.CompiledAt(pc) != nil {
				t.Fatalf("compiled chain at %#x survived PatchImm", pc)
			}
		}

		resS := sysS.Run(30_000)
		resB := sysB.Run(30_000)
		resJ := sysJ.Run(30_000)
		for _, cmp := range []struct {
			name string
			sys  *System
			res  Results
		}{{"batch", sysB, resB}, {"jit", sysJ, resJ}} {
			if cmp.res != resS {
				t.Fatalf("Results diverged\n%s: %+v\nslow: %+v", cmp.name, cmp.res, resS)
			}
			if pcF, pcS := cmp.sys.Thread().PC(), sysS.Thread().PC(); pcF != pcS {
				t.Fatalf("final PC diverged: %s %#x, slow %#x", cmp.name, pcF, pcS)
			}
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if vF, vS := cmp.sys.Thread().Reg(r), sysS.Thread().Reg(r); vF != vS {
					t.Fatalf("r%d diverged: %s %#x, slow %#x", r, cmp.name, vF, vS)
				}
			}
			if cmp.sys.hier.Stats != sysS.hier.Stats {
				t.Fatalf("memsys.Stats diverged\n%s: %+v\nslow: %+v",
					cmp.name, cmp.sys.hier.Stats, sysS.hier.Stats)
			}
		}
	})
}

// fuzzPatchTarget picks a deterministic PatchImm target in sys's code cache:
// the first immediate-carrying, non-control instruction of the lowest live
// placement. Branch immediates are excluded (rewriting a displacement can
// jump outside placed code), and the new immediate nudges the old one by one
// word so address-forming offsets stay aligned and in range. Returns pc 0
// when no live trace offers a target (the fuzz mapping is total; a body of
// pure branches may place nothing patchable).
func fuzzPatchTarget(sys *System) (pc uint64, imm int64) {
	sys.cache.VisitPlacements(func(pl *trident.Placement) {
		if pc != 0 || !pl.Live {
			return
		}
		for i := range pl.Trace.Insts {
			in := pl.Trace.Insts[i].Inst
			switch in.Op {
			case isa.LD, isa.LDNF, isa.ST, isa.PREFETCH, isa.ADDI, isa.SUBI,
				isa.XORI, isa.ANDI, isa.ORI, isa.LDI:
				p := pl.Start + uint64(i)*isa.WordSize
				next := in.Imm + 8
				if next > isa.ImmMax {
					next = in.Imm - 8
				}
				pc, imm = p, next
				return
			}
		}
	})
	return pc, imm
}

// buildFuzzProgram turns fuzz bytes into a runnable hot loop. The mapping is
// total (every byte string yields a valid program) and deterministic, with
// the loop bookkeeping kept in registers the fuzz body never writes.
func buildFuzzProgram(data []byte) *program.Program {
	b := program.NewBuilder("fuzz", 0x1000, 1<<20)
	arr := b.Alloc(32 << 10)
	// Seed every third line's first word: loads see a mix of mapped and
	// unmapped words, so LDNF's valid-word semantics are exercised too.
	for i := uint64(0); i < 512; i += 3 {
		b.SetWord(arr+i*64, i*0x9e3779b97f4a7c15+1)
	}

	const (
		rPtr  = 1  // arr + index, recomputed each iteration
		rCnt  = 4  // outer counter
		rIdx  = 17 // masked walking index
		rMask = 20
		rArr  = 24
	)
	body := func(i int) isa.Reg { return isa.Reg(5 + i&7) } // r5..r12

	b.Ldi(rArr, arr)
	b.Ldi(rMask, (16<<10)-8)
	b.Ldi(rIdx, 0)
	b.Ldi(rCnt, 1<<40) // effectively endless; the run limit stops execution
	b.Label("loop")
	b.Op(isa.ADD, rPtr, rArr, rIdx)

	skips := 0
	for i, v := range data {
		rd := body(int(v >> 4))
		ra := body(int(v >> 2))
		rb := body(int(v))
		off := int64(v>>2) * 8 % 2048
		switch v & 15 {
		case 0, 1:
			b.Op(isa.ADD, rd, ra, rb)
		case 2:
			b.Op(isa.SUB, rd, ra, rb)
		case 3:
			b.Op(isa.XOR, rd, ra, rb)
		case 4:
			b.Op(isa.MUL, rd, ra, rb)
		case 5:
			b.OpI(isa.ADDI, rd, ra, int64(v>>4))
		case 6, 7:
			b.Ld(rd, rPtr, off)
		case 8:
			b.Emit(isa.Inst{Op: isa.LDNF, Rd: rd, Ra: rPtr, Imm: off})
		case 9, 10:
			b.St(rb, rPtr, off)
		case 11:
			b.Emit(isa.Inst{Op: isa.PREFETCH, Ra: rPtr, Imm: off * 4})
		case 12:
			b.Op(isa.FDIV, rd, ra, rb)
		case 13, 14:
			// Data-dependent forward skip over one instruction: the branch
			// direction varies run-time state, so the profiler's bitmaps and
			// the batcher's fold handling both see fuzz-chosen shapes.
			op := isa.BEQ
			if v&1 == 0 {
				op = isa.BNE
			}
			label := "s" + string(rune('a'+skips%26)) + string(rune('a'+skips/26))
			skips++
			b.CondBr(op, ra, label)
			b.OpI(isa.ADDI, rd, rd, int64(i)+1)
			b.Label(label)
		default:
			b.Op(isa.AND, rd, ra, rb)
		}
	}

	b.OpI(isa.ADDI, rIdx, rIdx, 40)
	b.Op(isa.AND, rIdx, rIdx, rMask)
	b.OpI(isa.SUBI, rCnt, rCnt, 1)
	b.CondBr(isa.BNE, rCnt, "loop")
	b.Halt()
	return b.MustBuild()
}
