package core

import (
	"bytes"
	"testing"

	"tridentsp/internal/isa"
	"tridentsp/internal/program"
)

// FuzzFastPathDifferential extends the repo's fuzz infrastructure (see
// internal/asm.FuzzAssemble) to the batch engine: arbitrary bytes become a
// structured hot loop mixing ALU ops, loads, non-faulting loads, stores,
// prefetches, FDIVs, and data-dependent forward branches, and the program
// runs on both paths. Any divergence in Results, final PC, the register
// file, or the memory-system statistics fails. The loop is hot by
// construction, so Trident forms traces over fuzz-chosen bodies and the
// batcher executes them — covering member classifications (and slow-path
// exclusions like FDIV) the hand-written differential matrix cannot
// enumerate.
func FuzzFastPathDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x66, 0x99, 0xb3})                       // load/store/prefetch
	f.Add([]byte{0xc4, 0xd5, 0xe6, 0xf7})                 // fdiv + branches
	f.Add(bytes.Repeat([]byte{0x67}, 24))                 // load-dense body
	f.Add(bytes.Repeat([]byte{0x9a, 0x08, 0xd1, 0x3f}, 8)) // store/ldnf/branch mix
	seq := make([]byte, 64)
	for i := range seq {
		seq[i] = byte(i * 37)
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 192 {
			data = data[:192]
		}
		fast := DefaultConfig()
		slow := DefaultConfig()
		slow.DisableFastPath = true
		sysF := NewSystem(fast, buildFuzzProgram(data))
		sysS := NewSystem(slow, buildFuzzProgram(data))
		resF := sysF.Run(30_000)
		resS := sysS.Run(30_000)
		if resF != resS {
			t.Fatalf("Results diverged\nfast: %+v\nslow: %+v", resF, resS)
		}
		if pcF, pcS := sysF.Thread().PC(), sysS.Thread().PC(); pcF != pcS {
			t.Fatalf("final PC diverged: fast %#x, slow %#x", pcF, pcS)
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if vF, vS := sysF.Thread().Reg(r), sysS.Thread().Reg(r); vF != vS {
				t.Fatalf("r%d diverged: fast %#x, slow %#x", r, vF, vS)
			}
		}
		if sysF.hier.Stats != sysS.hier.Stats {
			t.Fatalf("memsys.Stats diverged\nfast: %+v\nslow: %+v",
				sysF.hier.Stats, sysS.hier.Stats)
		}
	})
}

// buildFuzzProgram turns fuzz bytes into a runnable hot loop. The mapping is
// total (every byte string yields a valid program) and deterministic, with
// the loop bookkeeping kept in registers the fuzz body never writes.
func buildFuzzProgram(data []byte) *program.Program {
	b := program.NewBuilder("fuzz", 0x1000, 1<<20)
	arr := b.Alloc(32 << 10)
	// Seed every third line's first word: loads see a mix of mapped and
	// unmapped words, so LDNF's valid-word semantics are exercised too.
	for i := uint64(0); i < 512; i += 3 {
		b.SetWord(arr+i*64, i*0x9e3779b97f4a7c15+1)
	}

	const (
		rPtr  = 1  // arr + index, recomputed each iteration
		rCnt  = 4  // outer counter
		rIdx  = 17 // masked walking index
		rMask = 20
		rArr  = 24
	)
	body := func(i int) isa.Reg { return isa.Reg(5 + i&7) } // r5..r12

	b.Ldi(rArr, arr)
	b.Ldi(rMask, (16<<10)-8)
	b.Ldi(rIdx, 0)
	b.Ldi(rCnt, 1<<40) // effectively endless; the run limit stops execution
	b.Label("loop")
	b.Op(isa.ADD, rPtr, rArr, rIdx)

	skips := 0
	for i, v := range data {
		rd := body(int(v >> 4))
		ra := body(int(v >> 2))
		rb := body(int(v))
		off := int64(v>>2) * 8 % 2048
		switch v & 15 {
		case 0, 1:
			b.Op(isa.ADD, rd, ra, rb)
		case 2:
			b.Op(isa.SUB, rd, ra, rb)
		case 3:
			b.Op(isa.XOR, rd, ra, rb)
		case 4:
			b.Op(isa.MUL, rd, ra, rb)
		case 5:
			b.OpI(isa.ADDI, rd, ra, int64(v>>4))
		case 6, 7:
			b.Ld(rd, rPtr, off)
		case 8:
			b.Emit(isa.Inst{Op: isa.LDNF, Rd: rd, Ra: rPtr, Imm: off})
		case 9, 10:
			b.St(rb, rPtr, off)
		case 11:
			b.Emit(isa.Inst{Op: isa.PREFETCH, Ra: rPtr, Imm: off * 4})
		case 12:
			b.Op(isa.FDIV, rd, ra, rb)
		case 13, 14:
			// Data-dependent forward skip over one instruction: the branch
			// direction varies run-time state, so the profiler's bitmaps and
			// the batcher's fold handling both see fuzz-chosen shapes.
			op := isa.BEQ
			if v&1 == 0 {
				op = isa.BNE
			}
			label := "s" + string(rune('a'+skips%26)) + string(rune('a'+skips/26))
			skips++
			b.CondBr(op, ra, label)
			b.OpI(isa.ADDI, rd, rd, int64(i)+1)
			b.Label(label)
		default:
			b.Op(isa.AND, rd, ra, rb)
		}
	}

	b.OpI(isa.ADDI, rIdx, rIdx, 40)
	b.Op(isa.AND, rIdx, rIdx, rMask)
	b.OpI(isa.SUBI, rCnt, rCnt, 1)
	b.CondBr(isa.BNE, rCnt, "loop")
	b.Halt()
	return b.MustBuild()
}
