package core

import (
	"testing"

	"tridentsp/internal/telemetry"
	"tridentsp/internal/workloads"
)

// The divergence sentinel (sentinel.go) claims three things: it is
// transparent on a healthy machine, it catches a genuine fast-path state
// corruption, and its response (rewind + demote) completes the run with
// the same results an uncorrupted machine produces.

// zeroSentinel clears the sentinel's own activity counters so results can
// be compared across machines that checked different numbers of windows
// (a tripped sentinel stops checking after it demotes).
func zeroSentinel(r Results) Results {
	r.SentinelChecks = 0
	r.SentinelTrips = 0
	return r
}

func sentinelConfigForTest() Config {
	cfg := DefaultConfig()
	cfg.SentinelEvery = 30_000
	cfg.SentinelWindow = 30_000
	cfg.Telemetry = &telemetry.Options{}
	return cfg
}

func TestSentinelNoFalsePositives(t *testing.T) {
	bm, _ := workloads.ByName("mcf")
	cfg := sentinelConfigForTest()

	armed := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
	resArmed := armed.Run(200_000)
	if resArmed.SentinelChecks == 0 {
		t.Fatal("sentinel never checked a window")
	}
	if resArmed.SentinelTrips != 0 {
		t.Fatalf("sentinel tripped %d times on a healthy run", resArmed.SentinelTrips)
	}

	// Transparency: an armed sentinel must not perturb the run at all.
	off := cfg
	off.SentinelEvery, off.SentinelWindow = 0, 0
	plain := NewSystem(off, bm.Build(workloads.ScaleSmall))
	resPlain := plain.Run(200_000)
	if zeroSentinel(resArmed) != resPlain {
		t.Errorf("armed sentinel perturbed the run\narmed: %+v\nplain: %+v", resArmed, resPlain)
	}
}

func TestSentinelCatchesInjectedFault(t *testing.T) {
	bm, _ := workloads.ByName("mcf")
	cfg := sentinelConfigForTest()

	clean := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
	resClean := clean.Run(200_000)

	faulty := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
	// Mid-window corruption (windows open back to back at every multiple
	// of 30k): flip a bit in a register the workloads never touch, so the
	// corruption survives to the window-end digest.
	faulty.InjectFastPathFault(45_000, 20, 1<<7)
	resFaulty := faulty.Run(200_000)

	if resFaulty.SentinelTrips == 0 {
		t.Fatal("sentinel missed the injected fast-path corruption")
	}
	if resFaulty.Aborted != "" {
		t.Fatalf("healing aborted the run: %s", resFaulty.Aborted)
	}

	// Self-repair: the rewind discarded the corruption and the demoted
	// (reference-loop) remainder must land on the uncorrupted results.
	if zeroSentinel(resFaulty) != zeroSentinel(resClean) {
		t.Errorf("healed run diverged from clean run\nclean:  %+v\nhealed: %+v", resClean, resFaulty)
	}
	for r := 0; r < 32; r++ {
		if a, b := clean.Thread().Reg(isaReg(uint8(r))), faulty.Thread().Reg(isaReg(uint8(r))); a != b {
			t.Errorf("r%d diverged after healing: clean %#x, healed %#x", r, a, b)
		}
	}

	// The divergence must be on the telemetry record.
	var divergences int
	for _, ev := range faulty.Telemetry().EngineEvents() {
		if ev.Kind == telemetry.KindSentinelDivergence {
			divergences++
		}
	}
	if divergences == 0 {
		t.Error("no sentinel-divergence telemetry event was emitted")
	}
}

// TestSentinelCheckpointRoundTrip: an open sentinel window (snapshot in
// hand) survives a checkpoint/restore cycle and still verifies.
func TestSentinelCheckpointRoundTrip(t *testing.T) {
	bm, _ := workloads.ByName("mcf")
	cfg := sentinelConfigForTest()

	ref := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
	resRef := ref.Run(150_000)

	resCkpt, sys := checkpointedRun(t, cfg, bm, 150_000, 40_000)
	compareSystems(t, "sentinel", resRef, resCkpt, ref, sys)
	if resCkpt.SentinelChecks == 0 {
		t.Fatal("sentinel never checked across the checkpointed run")
	}
}

// TestSentinelQuarantinesJIT: a sentinel trip on a machine running the JIT
// tier must quarantine the tier alongside the batch engine — fast path off,
// JIT off, every compiled closure chain dropped eagerly — and the demoted
// remainder must still heal to the results of an uncorrupted machine.
func TestSentinelQuarantinesJIT(t *testing.T) {
	bm, _ := workloads.ByName("mcf")
	cfg := sentinelConfigForTest()
	cfg.JIT = true
	cfg.JITThreshold = 0 // compile everything: chains are resident at the trip

	clean := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
	resClean := clean.Run(200_000)

	faulty := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
	faulty.InjectFastPathFault(45_000, 20, 1<<7)
	resFaulty := faulty.Run(200_000)

	if resFaulty.SentinelTrips == 0 {
		t.Fatal("sentinel missed the injected corruption under -jit")
	}
	if faulty.tiers[tierJIT].instrs == 0 {
		t.Fatal("JIT tier never ran before the trip; quarantine test is vacuous")
	}
	if !faulty.cfg.DisableFastPath || faulty.cfg.JIT {
		t.Fatalf("demotion left accelerated tiers armed: DisableFastPath=%v JIT=%v",
			faulty.cfg.DisableFastPath, faulty.cfg.JIT)
	}
	// Every compiled chain must be gone from both decoded images — the lazy
	// generation guard never runs once the fast path is off, so anything
	// still resident here is pinned for the rest of the run.
	prog := faulty.pristine
	for pc := prog.Base; pc < prog.CodeEnd(); pc += 8 {
		if faulty.live.CompiledAt(pc) != nil {
			t.Fatalf("live image still holds a compiled chain at %#x", pc)
		}
	}
	ccBase := faulty.cache.Base()
	for pc := ccBase; pc < ccBase+uint64(faulty.cache.Size()); pc += 8 {
		if faulty.cache.CompiledAt(pc) != nil {
			t.Fatalf("code cache still holds a compiled chain at %#x", pc)
		}
	}

	if resFaulty.Aborted != "" {
		t.Fatalf("healing aborted the run: %s", resFaulty.Aborted)
	}
	if zeroSentinel(resFaulty) != zeroSentinel(resClean) {
		t.Errorf("healed -jit run diverged from clean run\nclean:  %+v\nhealed: %+v",
			resClean, resFaulty)
	}
	for r := 0; r < 32; r++ {
		if a, b := clean.Thread().Reg(isaReg(uint8(r))), faulty.Thread().Reg(isaReg(uint8(r))); a != b {
			t.Errorf("r%d diverged after healing: clean %#x, healed %#x", r, a, b)
		}
	}
}
