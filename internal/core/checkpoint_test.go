package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"tridentsp/internal/chaos"
	"tridentsp/internal/isa"
	"tridentsp/internal/program"
	"tridentsp/internal/telemetry"
	"tridentsp/internal/workloads"
)

// Checkpoint/restore (state.go) claims a restored machine is bit-identical
// to one that never stopped. These tests prove it the same way the fast
// path proved its equivalence: run the reference uninterrupted, run the
// same machine through checkpoint → fresh System → restore cycles at every
// window boundary, and require Results (comparable, == is the exact check),
// the final PC, the register file, and the semantic telemetry stream to
// match exactly.

// checkpointedRun executes bm in windows, serializing and restoring into a
// freshly constructed System at every boundary. Returns the final results
// and the final system.
func checkpointedRun(t *testing.T, cfg Config, bm workloads.Benchmark,
	limit, window uint64) (Results, *System) {
	t.Helper()
	sys := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
	var res Results
	for {
		next := sys.OrigInstrs() + window
		if next > limit {
			next = limit
		}
		res = sys.Run(next)
		if res.Aborted != "" || sys.Thread().Halted() || sys.OrigInstrs() >= limit {
			return res, sys
		}
		if !sys.Quiesce(1_000_000) {
			t.Fatalf("machine did not quiesce at %d instructions", sys.OrigInstrs())
		}
		blob, err := sys.SaveState()
		if err != nil {
			t.Fatalf("SaveState at %d instructions: %v", sys.OrigInstrs(), err)
		}
		fresh := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
		if err := fresh.RestoreState(blob); err != nil {
			t.Fatalf("RestoreState at %d instructions: %v", sys.OrigInstrs(), err)
		}
		// Canonical form: re-serializing the restored machine must
		// reproduce the exact bytes (maps travel sorted, rings by content).
		blob2, err := fresh.SaveState()
		if err != nil {
			t.Fatalf("re-SaveState: %v", err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("restore is not canonical: blobs differ at %d instructions (%d vs %d bytes)",
				sys.OrigInstrs(), len(blob), len(blob2))
		}
		sys = fresh
	}
}

// compareSystems requires two finished machines to agree on everything the
// determinism contract covers (engine telemetry excluded by design: batch
// boundaries move across a restore).
func compareSystems(t *testing.T, label string, resA, resB Results, a, b *System) {
	t.Helper()
	if resA != resB {
		t.Errorf("%s: Results diverged\nuninterrupted: %+v\ncheckpointed:  %+v", label, resA, resB)
	}
	if pa, pb := a.Thread().PC(), b.Thread().PC(); pa != pb {
		t.Errorf("%s: final PC diverged: %#x vs %#x", label, pa, pb)
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if va, vb := a.Thread().Reg(r), b.Thread().Reg(r); va != vb {
			t.Errorf("%s: r%d diverged: %#x vs %#x", label, r, va, vb)
		}
	}
	if a.hier.Stats != b.hier.Stats {
		t.Errorf("%s: memsys.Stats diverged\n%+v\nvs\n%+v", label, a.hier.Stats, b.hier.Stats)
	}
	evA := telemetry.Renumber(a.Telemetry().Events())
	evB := telemetry.Renumber(b.Telemetry().Events())
	if len(evA) != len(evB) {
		t.Errorf("%s: semantic event counts diverged: %d vs %d", label, len(evA), len(evB))
	} else if !reflect.DeepEqual(evA, evB) {
		for i := range evA {
			if evA[i] != evB[i] {
				t.Errorf("%s: semantic event %d diverged:\n%+v\nvs\n%+v", label, i, evA[i], evB[i])
				break
			}
		}
	}
}

func TestCheckpointResumeDeterminism(t *testing.T) {
	telem := func(c Config) Config { c.Telemetry = &telemetry.Options{}; return c }
	matrix := []struct {
		name string
		cfg  Config
	}{
		{"default", telem(DefaultConfig())},
		{"slowpath", telem(func() Config { c := DefaultConfig(); c.DisableFastPath = true; return c }())},
		{"baseline", telem(BaselineConfig(HW8x8))},
		{"valspec-backout-phase", telem(func() Config {
			c := DefaultConfig()
			c.ValueSpecialize = true
			c.Backout = true
			c.BackoutMinEntries = 64
			c.BackoutRatio = 0.9
			c.PhaseClearMature = true
			c.PhaseWindow = 20_000
			c.PhaseDelta = 0.1
			return c
		}())},
	}
	bm, _ := workloads.ByName("mcf")
	for _, m := range matrix {
		m := m
		t.Run(m.name, func(t *testing.T) {
			ref := NewSystem(m.cfg, bm.Build(workloads.ScaleSmall))
			resRef := ref.Run(150_000)
			resCkpt, sys := checkpointedRun(t, m.cfg, bm, 150_000, 40_000)
			compareSystems(t, m.name, resRef, resCkpt, ref, sys)
		})
	}
}

func TestCheckpointResumeDeterminismChaosPresets(t *testing.T) {
	bm, _ := workloads.ByName("art")
	for _, preset := range chaos.Presets() {
		preset := preset
		t.Run(string(preset), func(t *testing.T) {
			sched, err := chaos.NewSchedule(preset, 42, 4_000_000)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Chaos = sched
			cfg.Telemetry = &telemetry.Options{}
			if preset == chaos.PresetLatencyPhase {
				cfg.ChaosShadow = true // shadow machines must checkpoint recursively
			}
			ref := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
			resRef := ref.Run(150_000)
			resCkpt, sys := checkpointedRun(t, cfg, bm, 150_000, 35_000)
			compareSystems(t, string(preset), resRef, resCkpt, ref, sys)
		})
	}
}

// abortingProgram does real streaming work, then falls into a weight-zero
// self-loop (the bitmap marks it as a patch site, excluding it from
// original-instruction accounting) — the livelock scenario a bad trace
// patch leaves behind.
func abortingProgram() (*program.Program, uint64) {
	b := program.NewBuilder("abort-spin", 0x1000, 0x1000000)
	arr := b.Alloc(1 << 20)
	b.Ldi(1, arr)
	b.Ldi(4, 60_000)
	b.Label("top")
	b.Ld(2, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 64)
	b.Op(isa.ADD, 3, 3, 2)
	b.OpI(isa.ANDI, 1, 1, (1<<20)-1)
	b.OpI(isa.ADDI, 1, 1, 0x1000)
	b.OpI(isa.SUBI, 4, 4, 1)
	b.CondBr(isa.BNE, 4, "top")
	spin := b.PC()
	b.Label("spin")
	b.Br("spin")
	b.Halt()
	return b.MustBuild(), spin
}

// TestCheckpointResumeAfterAbort: a run that hits the livelock abort can be
// restored from its last checkpoint and re-aborts bit-identically to an
// uninterrupted run — the crash-recovery path the checkpoint driver relies
// on after a SIGKILL mid-window.
func TestCheckpointResumeAfterAbort(t *testing.T) {
	prog, spin := abortingProgram()
	cfg := DefaultConfig()
	cfg.LivelockWindow = 10_000
	const limit = 2_000_000

	run := func() (*System, Results) {
		sys := NewSystem(cfg, prog.ClonePristine())
		sys.setPatched(spin, true)
		return sys, sys.Run(limit)
	}

	ref, resRef := run()
	if resRef.Aborted == "" {
		t.Fatal("reference run did not abort")
	}
	if !strings.Contains(resRef.Aborted, "livelock") {
		t.Fatalf("unexpected abort reason: %s", resRef.Aborted)
	}

	// Windowed run: checkpoint every 80k instructions until the abort,
	// keeping the last good blob.
	sys := NewSystem(cfg, prog.ClonePristine())
	sys.setPatched(spin, true)
	var lastBlob []byte
	var resAborted Results
	for {
		resAborted = sys.Run(sys.OrigInstrs() + 80_000)
		if resAborted.Aborted != "" || sys.Thread().Halted() {
			break
		}
		if !sys.Quiesce(1_000_000) {
			t.Fatal("did not quiesce")
		}
		blob, err := sys.SaveState()
		if err != nil {
			t.Fatal(err)
		}
		lastBlob = blob
	}
	if resAborted.Aborted == "" {
		t.Fatal("windowed run did not abort")
	}
	if lastBlob == nil {
		t.Fatal("no checkpoint was taken before the abort")
	}

	// Restore the last checkpoint into a fresh machine (no setPatched: the
	// bitmap travels in the blob) and re-run the remaining window.
	restored := NewSystem(cfg, prog.ClonePristine())
	if err := restored.RestoreState(lastBlob); err != nil {
		t.Fatal(err)
	}
	resRestored := restored.Run(limit)
	if resRestored != resRef {
		t.Errorf("restored run diverged from uninterrupted\nuninterrupted: %+v\nrestored:      %+v",
			resRef, resRestored)
	}
	if ref.Thread().PC() != restored.Thread().PC() {
		t.Errorf("final PC diverged: %#x vs %#x", ref.Thread().PC(), restored.Thread().PC())
	}
}

// TestRestoreRejectsTruncation: every truncation of a valid state blob must
// be rejected with an error — never a panic, never a silent partial load.
func TestRestoreRejectsTruncation(t *testing.T) {
	bm, _ := workloads.ByName("swim")
	cfg := DefaultConfig()
	cfg.Telemetry = &telemetry.Options{}
	sys := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
	sys.Run(60_000)
	if !sys.Quiesce(1_000_000) {
		t.Fatal("did not quiesce")
	}
	blob, err := sys.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	// Sample truncation points densely at the head (headers, marks) and
	// sparsely through the body.
	for k := 0; k < len(blob); k += 1 + k/16 {
		fresh := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
		if err := fresh.RestoreState(blob[:k]); err == nil {
			t.Fatalf("truncation to %d/%d bytes restored without error", k, len(blob))
		}
	}
	// Trailing garbage is also structural corruption.
	fresh := NewSystem(cfg, bm.Build(workloads.ScaleSmall))
	if err := fresh.RestoreState(append(append([]byte{}, blob...), 0xEE)); err == nil {
		t.Fatal("trailing garbage restored without error")
	}
}

// TestRestoreRejectsConfigMismatch: a blob saved from one configuration
// must not load into a machine built from a different one.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	bm, _ := workloads.ByName("swim")
	sys := NewSystem(DefaultConfig(), bm.Build(workloads.ScaleSmall))
	sys.Run(30_000)
	if !sys.Quiesce(1_000_000) {
		t.Fatal("did not quiesce")
	}
	blob, err := sys.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	other := NewSystem(BaselineConfig(HWNone), bm.Build(workloads.ScaleSmall))
	if err := other.RestoreState(blob); err == nil {
		t.Fatal("Trident blob restored into a baseline machine")
	}
}
