package core

import (
	"fmt"
	"sort"
	"strings"

	"tridentsp/internal/exp/render"
	"tridentsp/internal/isa"
)

// TraceReport renders every trace currently in the code cache: placement
// metadata, watch-table timing, and a disassembly with the optimizer's
// inserted prefetch code marked. cmd/tracedump exposes it; it is the main
// window into what the dynamic optimizer actually did to a program.
func (s *System) TraceReport() string {
	if !s.cfg.Trident {
		return "trident disabled: no traces\n"
	}
	var sb strings.Builder
	ids := make([]int, 0, 8)
	for id := 1; ; id++ {
		if _, ok := s.cache.PlacementByID(id); !ok {
			break
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) == 0 {
		sb.WriteString("no traces formed\n")
		return sb.String()
	}
	for _, id := range ids {
		pl, _ := s.cache.PlacementByID(id)
		state := "retired"
		if pl.Live {
			state = "live"
		}
		fmt.Fprintf(&sb, "trace %d (%s): head %#x, placed at %#x, %d instructions\n",
			id, state, pl.Trace.StartPC, pl.Start, pl.Trace.Len())
		if we, ok := s.watch.ByID(id); ok {
			fmt.Fprintf(&sb, "  watch: min traversal %d cycles, avg %d, %d traversals\n",
				we.MinExecTime, we.AvgExecTime(), we.Traversals)
		}
		if s.opt != nil {
			dists := map[uint64]int64{}
			for i := range pl.Trace.Insts {
				ti := &pl.Trace.Insts[i]
				if ti.OrigPC != 0 {
					if d := s.opt.Distance(pl.Trace.StartPC, ti.OrigPC); d > 0 {
						dists[ti.OrigPC] = d
					}
				}
			}
			if len(dists) > 0 {
				pcs := make([]uint64, 0, len(dists))
				for pc := range dists {
					pcs = append(pcs, pc)
				}
				sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
				sb.WriteString("  prefetch distances:")
				for _, pc := range pcs {
					fmt.Fprintf(&sb, " load@%#x=%d", pc, dists[pc])
				}
				sb.WriteByte('\n')
			}
		}
		for i := range pl.Trace.Insts {
			ti := &pl.Trace.Insts[i]
			pc := pl.Start + uint64(i)*isa.WordSize
			in, _ := s.cache.Fetch(pc) // current (possibly patched) bits
			mark := "  "
			if ti.Inserted {
				mark = "+ "
			}
			orig := ""
			if ti.OrigPC != 0 {
				orig = fmt.Sprintf("  ; orig %#x", ti.OrigPC)
			}
			fmt.Fprintf(&sb, "  %s%#08x: %s\n", mark, pc,
				render.Columns("", []int{-32}, isa.Disassemble(pc, in))+orig)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
