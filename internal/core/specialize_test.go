package core

import (
	"testing"

	"tridentsp/internal/isa"
	"tridentsp/internal/program"
)

// divWorkload loads a scale factor from memory every iteration and divides
// by it; the scale is a constant power of two, so value specialization can
// turn the long-latency divide into a shift behind a guard.
func divWorkload(scale uint64) *program.Program {
	b := program.NewBuilder("divloop", 0x1000, 0x1000000)
	cell := b.AllocWords(scale)
	// Cache-resident data: nothing for the prefetcher to do, so the
	// invariant-load event is the only optimization in play.
	arr := b.Alloc(64 << 10)
	b.Ldi(6, 1<<40)
	b.Label("outer")
	b.Ldi(1, arr)
	b.Ldi(4, 4096)
	b.Ldi(9, cell)
	b.Label("top")
	b.Ld(2, 9, 0) // the quasi-invariant scale
	b.Ld(3, 1, 0)
	b.Op(isa.FDIV, 5, 3, 2) // expensive divide by the invariant
	b.Op(isa.ADD, 7, 7, 5)
	b.OpI(isa.ADDI, 1, 1, 8)
	b.OpI(isa.ANDI, 1, 1, (64<<10)-1)
	b.Ldi(8, arr)
	b.Op(isa.OR, 1, 1, 8)
	b.OpI(isa.SUBI, 4, 4, 1)
	b.CondBr(isa.BNE, 4, "top")
	b.OpI(isa.SUBI, 6, 6, 1)
	b.CondBr(isa.BNE, 6, "outer")
	b.Halt()
	p := b.MustBuild()
	for i := 0; i < 4096; i++ {
		p.Data[arr+uint64(i)*8] = uint64(i) * 1234567
	}
	return p
}

func TestValueSpecializationRemovesDivLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HW = HWNone
	base := NewSystem(cfg, divWorkload(8)).Run(1_500_000)

	cfg.ValueSpecialize = true
	spec := NewSystem(cfg, divWorkload(8)).Run(1_500_000)

	if spec.TracesSpecialized == 0 {
		t.Fatal("no trace was specialized")
	}
	// The divide costs FDivLatency (12 cycles) per iteration; the loop is
	// ~12 instructions (3 cycles issue), so specialization should cut the
	// iteration time substantially.
	sp := Speedup(spec, base)
	if sp < 1.3 {
		t.Fatalf("specialization speedup = %.3f, want > 1.3 (divide folded to shift)", sp)
	}
}

func TestValueSpecializationTransparent(t *testing.T) {
	// Finite variant: both configurations must compute identical sums.
	build := func() *program.Program {
		b := program.NewBuilder("divfin", 0x1000, 0x1000000)
		cell := b.AllocWords(16)
		arr := b.Alloc(64 << 10)
		b.Ldi(6, 30)
		b.Label("outer")
		b.Ldi(1, arr)
		b.Ldi(4, 2048)
		b.Ldi(9, cell)
		b.Label("top")
		b.Ld(2, 9, 0)
		b.Ld(3, 1, 0)
		b.Op(isa.FDIV, 5, 3, 2)
		b.Op(isa.ADD, 7, 7, 5)
		b.OpI(isa.ADDI, 1, 1, 8)
		b.OpI(isa.SUBI, 4, 4, 1)
		b.CondBr(isa.BNE, 4, "top")
		b.OpI(isa.SUBI, 6, 6, 1)
		b.CondBr(isa.BNE, 6, "outer")
		b.Halt()
		p := b.MustBuild()
		for i := 0; i < 2048; i++ {
			p.Data[arr+uint64(i)*8] = uint64(i)*977 + 13
		}
		return p
	}
	ref := NewSystem(BaselineConfig(HWNone), build())
	ref.Run(1 << 62)
	cfg := DefaultConfig()
	cfg.ValueSpecialize = true
	spec := NewSystem(cfg, build())
	res := spec.Run(1 << 62)
	if !ref.Thread().Halted() || !spec.Thread().Halted() {
		t.Fatal("runs did not halt")
	}
	if ref.Thread().Reg(7) != spec.Thread().Reg(7) {
		t.Fatalf("specialized sum %d != reference %d (specialized %d traces)",
			spec.Thread().Reg(7), ref.Thread().Reg(7), res.TracesSpecialized)
	}
}

func TestValueSpecializationGuardDeoptimizes(t *testing.T) {
	// The scale value flips mid-run: the guard must send execution back to
	// original code with correct results (and back-out may reclaim the
	// trace).
	build := func() *program.Program {
		b := program.NewBuilder("divflip", 0x1000, 0x1000000)
		cell := b.AllocWords(8)
		arr := b.Alloc(64 << 10)
		b.Ldi(6, 40)
		b.Ldi(10, 20) // outer iterations until the flip
		b.Label("outer")
		b.Ldi(1, arr)
		b.Ldi(4, 2048)
		b.Ldi(9, cell)
		b.Label("top")
		b.Ld(2, 9, 0)
		b.Ld(3, 1, 0)
		b.Op(isa.FDIV, 5, 3, 2)
		b.Op(isa.ADD, 7, 7, 5)
		b.OpI(isa.ADDI, 1, 1, 8)
		b.OpI(isa.SUBI, 4, 4, 1)
		b.CondBr(isa.BNE, 4, "top")
		// After 20 outer rounds, change the divisor to 4.
		b.OpI(isa.SUBI, 10, 10, 1)
		b.CondBr(isa.BNE, 10, "noflip")
		b.Ldi(11, 4)
		b.St(11, 9, 0)
		b.Label("noflip")
		b.OpI(isa.SUBI, 6, 6, 1)
		b.CondBr(isa.BNE, 6, "outer")
		b.Halt()
		p := b.MustBuild()
		for i := 0; i < 2048; i++ {
			p.Data[arr+uint64(i)*8] = uint64(i)*31 + 7
		}
		return p
	}
	ref := NewSystem(BaselineConfig(HWNone), build())
	ref.Run(1 << 62)
	cfg := DefaultConfig()
	cfg.ValueSpecialize = true
	cfg.Backout = true
	spec := NewSystem(cfg, build())
	res := spec.Run(1 << 62)
	if !spec.Thread().Halted() {
		t.Fatal("specialized run did not halt")
	}
	if ref.Thread().Reg(7) != spec.Thread().Reg(7) {
		t.Fatalf("guard failure corrupted results: %d != %d (specialized %d, backed out %d)",
			spec.Thread().Reg(7), ref.Thread().Reg(7),
			res.TracesSpecialized, res.TracesBackedOut)
	}
}

func TestValueSpecializationOffByDefault(t *testing.T) {
	cfg := DefaultConfig()
	res := NewSystem(cfg, divWorkload(8)).Run(500_000)
	if res.TracesSpecialized != 0 {
		t.Fatal("specialization ran while disabled")
	}
}
