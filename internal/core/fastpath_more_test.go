package core

import (
	"testing"

	"tridentsp/internal/isa"
	"tridentsp/internal/memsys"
	"tridentsp/internal/trident"
	"tridentsp/internal/workloads"
)

// TestFastPathDLTSampleSequence runs a miss-heavy workload on both paths and
// requires the delinquent load table to end in the same state entry by
// entry. The DLT digests the exact sample sequence it was fed — window
// counters, accumulated miss latency, stride-predictor state, and the event
// count — so any fast-path reordering, duplication, or loss of a single
// in-trace load sample diverges some field. The run is windowed so every
// resume crosses a batch boundary: L1 misses mid-superblock stop the batch
// at the missing load (pinned instruction-exactly by the cpu-level
// superblock tests) and the load retires through step(), which must feed the
// table the very same (addr, miss, latency) sample.
func TestFastPathDLTSampleSequence(t *testing.T) {
	bm, ok := workloads.ByName("mcf")
	if !ok {
		t.Fatal("unknown benchmark mcf")
	}
	progF := bm.Build(workloads.ScaleSmall)
	progS := bm.Build(workloads.ScaleSmall)
	fast := DefaultConfig()
	slow := DefaultConfig()
	slow.DisableFastPath = true
	sysF := NewSystem(fast, progF)
	sysS := NewSystem(slow, progS)
	for target := uint64(50_000); target <= 250_000; target += 50_000 {
		sysF.Run(target)
		sysS.Run(target)
	}

	tF, tS := sysF.table, sysS.table
	// Non-vacuity: the run must actually have exercised the machinery under
	// test — monitored in-trace loads, L1 misses (each one a mid-batch stop
	// on the fast path), and at least one delinquent event.
	if sysF.stats.loadsInTrace == 0 {
		t.Fatal("no in-trace loads monitored; DLT comparison is vacuous")
	}
	if sysF.hier.Stats.ByOutcome[memsys.Miss] == 0 {
		t.Fatal("no L1 misses; no batch ever stopped mid-superblock")
	}
	if tF.Events == 0 {
		t.Fatal("no delinquent events; window thresholds never crossed")
	}

	if tF.Events != tS.Events || tF.Evictions != tS.Evictions || tF.Len() != tS.Len() {
		t.Fatalf("table shape diverged: events %d/%d, evictions %d/%d, len %d/%d",
			tF.Events, tS.Events, tF.Evictions, tS.Evictions, tF.Len(), tS.Len())
	}
	for pc := progF.Base; pc < progF.CodeEnd(); pc += isa.WordSize {
		eF, okF := tF.Lookup(pc)
		eS, okS := tS.Lookup(pc)
		if okF != okS {
			t.Errorf("pc %#x: tracked fast=%v slow=%v", pc, okF, okS)
			continue
		}
		if !okF {
			continue
		}
		if eF.Access != eS.Access || eF.Miss != eS.Miss || eF.MissLatency != eS.MissLatency {
			t.Errorf("pc %#x: window counters diverged: fast {%d %d %d}, slow {%d %d %d}",
				pc, eF.Access, eF.Miss, eF.MissLatency, eS.Access, eS.Miss, eS.MissLatency)
		}
		if eF.LastAddr != eS.LastAddr || eF.Stride != eS.Stride || eF.Confidence != eS.Confidence {
			t.Errorf("pc %#x: stride predictor diverged: fast {%#x %d %d}, slow {%#x %d %d}",
				pc, eF.LastAddr, eF.Stride, eF.Confidence, eS.LastAddr, eS.Stride, eS.Confidence)
		}
		if eF.Mature != eS.Mature {
			t.Errorf("pc %#x: mature flag diverged: fast %v, slow %v", pc, eF.Mature, eS.Mature)
		}
	}
}

// TestFastPathPatchImmHotLoop is the self-repair interaction with batching:
// a prefetch-distance rewrite (PatchImm) landing in a hot loop that the
// superblock engine is batching must take effect on the very next iteration.
// The code cache invalidates block descriptors on patch; a stale descriptor
// would keep issuing prefetches at the old distance forever.
func TestFastPathPatchImmHotLoop(t *testing.T) {
	bm, ok := workloads.ByName("swim")
	if !ok {
		t.Fatal("unknown benchmark swim")
	}
	cfg := DefaultConfig()
	sys := NewSystem(cfg, bm.Build(workloads.ScaleSmall))

	// Drive the optimizer until a live trace carries an inserted PREFETCH.
	var (
		pfPC  uint64
		limit uint64
	)
	for limit = 50_000; limit <= 600_000 && pfPC == 0; limit += 50_000 {
		sys.Run(limit)
		sys.cache.VisitPlacements(func(pl *trident.Placement) {
			if pfPC != 0 || !pl.Live {
				return
			}
			for i := range pl.Trace.Insts {
				ti := &pl.Trace.Insts[i]
				if ti.Inserted && ti.Inst.Op == isa.PREFETCH {
					pfPC = pl.Start + uint64(i)*isa.WordSize
					return
				}
			}
		})
	}
	if pfPC == 0 {
		t.Fatal("optimizer never placed a prefetch in a live trace")
	}

	// Rewrite the prefetch's offset to a distinctive far distance no other
	// access in the workload can reach, mimicking a repair event's patch.
	const farOff = 1 << 21
	oldImm, err := sys.cache.InstImm(pfPC)
	if err != nil {
		t.Fatal(err)
	}
	if oldImm == farOff {
		t.Fatalf("test offset collides with the optimizer's choice %d", oldImm)
	}
	if err := sys.cache.PatchImm(pfPC, farOff); err != nil {
		t.Fatal(err)
	}
	// The execution-visible fetch path and the batch descriptor must both
	// observe the rewritten word immediately.
	in, ok := sys.Fetch(pfPC)
	if !ok || in.Imm != farOff {
		t.Fatalf("Fetch after patch: ok=%v imm=%d, want %d", ok, in.Imm, farOff)
	}
	if blk, ok := sys.cache.BlockAt(pfPC); !ok || blk.Insts[0].Imm != farOff {
		t.Fatalf("BlockAt after patch: ok=%v, stale descriptor", ok)
	}

	// Run a few loop iterations at a time — batched by the superblock
	// engine — and require the machine behaviour to show the new distance:
	// a line in the far region (prefetch base + farOff, which only the
	// patched word addresses) entering L1 via a prefetch fill. The probe
	// window trails the base register, which advances between the patched
	// word's execution and the window boundary.
	issued := sys.hier.Stats.PrefetchesIssued
	lineSz := uint64(sys.hier.Config().LineSize)
	found := false
	for w := 0; w < 40 && !found; w++ {
		limit += 100
		sys.Run(limit)
		base := sys.thread.Reg(in.Ra)
		for back := uint64(0); back <= 256 && !found; back++ {
			found = sys.hier.ContainsL1(base + farOff - back*lineSz)
		}
	}
	if sys.hier.Stats.PrefetchesIssued == issued {
		t.Fatal("patched prefetch never executed")
	}
	if !found {
		t.Fatalf("no L1 line near base%+d after patched iterations (base=%#x)",
			farOff, sys.thread.Reg(in.Ra))
	}
}
