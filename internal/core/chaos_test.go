package core

import (
	"strings"
	"testing"

	"tridentsp/internal/chaos"
	"tridentsp/internal/isa"
	"tridentsp/internal/program"
)

// chaosConfig is the full-featured machine under fault injection: every
// recovery path armed (back-out, phase clearing), watchdog probing, and the
// lockstep transparency shadow.
func chaosConfig(sched *chaos.Schedule) Config {
	cfg := DefaultConfig()
	cfg.HW = HWNone
	cfg.Backout = true
	cfg.PhaseClearMature = true
	cfg.Chaos = sched
	cfg.ChaosMonitorEvery = 20_000
	cfg.ChaosShadow = true
	return cfg
}

// TestDeterministicResults guards the whole simulator against hidden
// nondeterminism: two runs of an identical configuration — including an
// identical chaos seed — must produce byte-identical Results. Results is a
// comparable struct, so == is the exact check.
func TestDeterministicResults(t *testing.T) {
	t.Run("baseline", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Backout = true
		cfg.PhaseClearMature = true
		run := func() Results {
			return NewSystem(cfg, strideWorkload(65536, 64, 4)).Run(400_000)
		}
		r1, r2 := run(), run()
		if r1 != r2 {
			t.Fatalf("identical configs diverged:\n%v\nvs\n%v", r1, r2)
		}
	})
	t.Run("chaos", func(t *testing.T) {
		sched, err := chaos.NewSchedule(chaos.PresetMonkey, 99, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		cfg := chaosConfig(sched)
		run := func() Results {
			return NewSystem(cfg, strideWorkload(65536, 64, 4)).Run(400_000)
		}
		r1, r2 := run(), run()
		if r1 != r2 {
			t.Fatalf("identical chaos seeds diverged:\n%v\nvs\n%v", r1, r2)
		}
		if r1.ChaosFaults == 0 {
			t.Fatal("no chaos faults applied: the determinism check is vacuous")
		}
		if r1.WatchdogProbes == 0 {
			t.Fatal("watchdog never probed")
		}
	})
}

// TestChaosPresetsKeepInvariants is the core acceptance gate: under every
// named preset, on several distinct workloads, the watchdog must report
// zero invariant violations, the shadow run must stay architecturally
// identical, and the machine must keep optimizing (traces live, repair
// activity present) — i.e. it degrades and recovers rather than breaking.
func TestChaosPresetsKeepInvariants(t *testing.T) {
	workloads := []struct {
		name string
		prog func() *program.Program
	}{
		{"stride", func() *program.Program { return strideWorkload(65536, 64, 4) }},
		{"chase", func() *program.Program { return pointerWorkload(16384, 64) }},
		{"phase", func() *program.Program { return phaseWorkload() }},
	}
	presets := []chaos.Preset{
		chaos.PresetLatencyPhase, chaos.PresetEvictionStorm, chaos.PresetHelperPreemption,
	}
	for _, preset := range presets {
		for _, wl := range workloads {
			preset, wl := preset, wl
			t.Run(string(preset)+"/"+wl.name, func(t *testing.T) {
				sched, err := chaos.NewSchedule(preset, 7, 1_500_000)
				if err != nil {
					t.Fatal(err)
				}
				sys := NewSystem(chaosConfig(sched), wl.prog())
				res := sys.Run(500_000)
				if res.Aborted != "" {
					t.Fatalf("aborted: %s", res.Aborted)
				}
				if res.ChaosFaults == 0 {
					t.Fatal("no faults applied: preset did not exercise anything")
				}
				if res.WatchdogProbes == 0 {
					t.Fatal("watchdog never probed")
				}
				if res.InvariantViolations != 0 {
					t.Fatalf("%d invariant violations, first: %s",
						res.InvariantViolations, res.FirstViolation)
				}
				if res.TracesFormed == 0 {
					t.Fatal("no traces formed under chaos")
				}
				if res.LiveTraces == 0 {
					t.Fatal("no trace survived or re-formed: the machine did not recover")
				}
			})
		}
	}
}

// TestEvictionStormRepairContinues pins the self-healing path specifically:
// a watch-table eviction storm must not permanently silence the repair
// loop — the watch entry is re-registered on the next trace entry and
// delinquent events keep flowing.
func TestEvictionStormRepairContinues(t *testing.T) {
	sched, err := chaos.NewSchedule(chaos.PresetEvictionStorm, 3, 2_500_000)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(chaosConfig(sched), strideWorkload(131072, 64, 4))
	res := sys.Run(900_000)
	if res.InvariantViolations != 0 {
		t.Fatalf("violations: %s", res.FirstViolation)
	}
	if res.Insertions == 0 {
		t.Fatal("prefetching never inserted under eviction storm")
	}
	if res.Repairs+res.Insertions < 2 {
		t.Fatalf("optimizer activity died after evictions: insertions=%d repairs=%d",
			res.Insertions, res.Repairs)
	}
}

// TestChaosRandomProgramTransparency extends the repo's strongest property
// test with fault injection: across random programs, the chaotic fully
// optimizing machine must still halt with bit-identical architectural state
// to the plain machine, with the continuous shadow check clean throughout.
func TestChaosRandomProgramTransparency(t *testing.T) {
	seeds := []int64{3, 7, 11, 19}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run("", func(t *testing.T) {
			ref := NewSystem(BaselineConfig(HWNone), randomProgram(seed))
			ref.Run(1 << 62)
			if !ref.Thread().Halted() {
				t.Fatalf("seed %d: reference did not halt", seed)
			}

			sched, err := chaos.NewSchedule(chaos.PresetMonkey, uint64(seed), 500_000)
			if err != nil {
				t.Fatal(err)
			}
			cfg := chaosConfig(sched)
			cfg.ChaosMonitorEvery = 5_000
			sys := NewSystem(cfg, randomProgram(seed))
			res := sys.Run(1 << 62)
			if !sys.Thread().Halted() {
				t.Fatalf("seed %d: chaotic run did not halt", seed)
			}
			if res.InvariantViolations != 0 {
				t.Fatalf("seed %d: %d violations, first: %s",
					seed, res.InvariantViolations, res.FirstViolation)
			}
			for reg := isa.Reg(0); reg < isa.NumRegs; reg++ {
				if reg == 30 { // optimizer scratch register
					continue
				}
				if ref.Thread().Reg(reg) != sys.Thread().Reg(reg) {
					t.Errorf("seed %d: r%d differs: %#x vs %#x",
						seed, reg, ref.Thread().Reg(reg), sys.Thread().Reg(reg))
				}
			}
			a, b := ref.mem.Snapshot(), sys.mem.Snapshot()
			if len(a) != len(b) {
				t.Fatalf("seed %d: memory footprints differ: %d vs %d", seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: memory differs at %#x: %#x vs %#x",
						seed, a[i].Addr, a[i].Val, b[i].Val)
				}
			}
		})
	}
}

// TestLivelockDetection: a weight-zero self-loop (what a bad patch would
// leave behind) must abort with a livelock reason instead of spinning to
// the cycle limit. The loop is constructed by marking the program's
// self-branch as a patch site, which excludes it from original-instruction
// accounting.
func TestLivelockDetection(t *testing.T) {
	b := program.NewBuilder("spin", 0x1000, 0x1000000)
	b.Label("L")
	b.Br("L")
	b.Halt()
	p := b.MustBuild()

	cfg := DefaultConfig()
	cfg.LivelockWindow = 10_000
	sys := NewSystem(cfg, p)
	sys.setPatched(p.Entry, true) // simulate a patch gone wrong
	res := sys.Run(100)
	if res.Aborted == "" {
		t.Fatal("livelock not detected")
	}
	if !strings.Contains(res.Aborted, "livelock") {
		t.Fatalf("unexpected abort reason: %s", res.Aborted)
	}
	if res.Cycles > 1_000_000 {
		t.Fatalf("spun too long before aborting: %d cycles", res.Cycles)
	}
}

// TestHealthyRunsDoNotAbort guards the detector's false-positive rate: the
// default window must never trip on real workloads, including memory-bound
// ones whose per-instruction latency is hundreds of cycles.
func TestHealthyRunsDoNotAbort(t *testing.T) {
	res := NewSystem(DefaultConfig(), pointerWorkload(65536, 64)).Run(150_000)
	if res.Aborted != "" {
		t.Fatalf("healthy run aborted: %s", res.Aborted)
	}
}

// flipPhaseWorkload combines the two recovery triggers in one program: a
// resident phase whose data-dependent branch flips direction mid-run (the
// back-out trigger from flipWorkload) followed by a streaming phase over a
// large array (the miss-rate phase shift from phaseWorkload).
func flipPhaseWorkload() *program.Program {
	b := program.NewBuilder("flip-phase", 0x1000, 0x1000000)
	flag := b.AllocWords(1) // 1 during warmup, 0 afterwards
	small := b.Alloc(16 << 10)
	big := b.Alloc(16 << 20)

	b.Ldi(6, 1<<40)
	b.Ldi(9, flag)
	b.Label("outer")
	// Phase A: cache-resident, with the flip branch.
	b.Ldi(1, small)
	b.Ldi(4, 30_000)
	b.Label("top")
	b.Ld(2, 9, 0) // the flip flag
	b.CondBr(isa.BEQ, 2, "cold")
	b.OpI(isa.ADDI, 5, 5, 1)
	b.OpI(isa.ADDI, 5, 5, 1)
	b.Br("join")
	b.Label("cold")
	b.OpI(isa.ADDI, 7, 7, 1)
	b.OpI(isa.ADDI, 7, 7, 1)
	b.Label("join")
	b.Ld(3, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 8)
	b.OpI(isa.ANDI, 1, 1, (16<<10)-1)
	// Flip the flag off when the r8 countdown hits zero.
	b.OpI(isa.SUBI, 8, 8, 1)
	b.CondBr(isa.BNE, 8, "noflip")
	b.St(isa.ZeroReg, 9, 0)
	b.Label("noflip")
	b.OpI(isa.SUBI, 4, 4, 1)
	b.CondBr(isa.BNE, 4, "top")
	// Phase B: streaming misses.
	b.Ldi(1, big)
	b.Ldi(4, 60_000)
	b.Label("pb")
	b.Ld(2, 1, 0)
	b.OpI(isa.ADDI, 1, 1, 64)
	b.Op(isa.ADD, 3, 3, 2)
	b.OpI(isa.SUBI, 4, 4, 1)
	b.CondBr(isa.BNE, 4, "pb")
	b.OpI(isa.SUBI, 6, 6, 1)
	b.CondBr(isa.BNE, 6, "outer")
	b.Halt()
	p := b.MustBuild()
	p.Data[flag] = 1
	return p
}

// TestBackoutAndPhaseClearInteract forces both recovery mechanisms in one
// run: the flip branch makes the first formed trace unrepresentative
// (back-out), then the resident→streaming transition trips the phase
// detector (mature clear). Neither may starve the other, and trace
// formation must outpace the back-outs — the machine keeps re-forming.
func TestBackoutAndPhaseClearInteract(t *testing.T) {
	run := func(sched *chaos.Schedule) Results {
		cfg := DefaultConfig()
		cfg.HW = HWNone
		cfg.Backout = true
		cfg.PhaseClearMature = true
		cfg.PhaseWindow = 150_000
		if sched != nil {
			cfg.Chaos = sched
			cfg.ChaosMonitorEvery = 25_000
			cfg.ChaosShadow = true
		}
		sys := NewSystem(cfg, flipPhaseWorkload())
		sys.Thread().SetReg(8, 10_000) // flip countdown
		return sys.Run(2_500_000)
	}

	res := run(nil)
	if res.TracesBackedOut == 0 {
		t.Fatal("flip branch never triggered a back-out")
	}
	if res.PhaseClears == 0 {
		t.Fatal("resident/streaming shift never triggered a phase clear")
	}
	if res.TracesFormed <= res.TracesBackedOut {
		t.Fatalf("formed %d, backed out %d: no recovery", res.TracesFormed, res.TracesBackedOut)
	}

	t.Run("under-chaos", func(t *testing.T) {
		sched, err := chaos.NewSchedule(chaos.PresetWorkloadShift, 5, 6_000_000)
		if err != nil {
			t.Fatal(err)
		}
		res := run(sched)
		if res.Aborted != "" {
			t.Fatalf("aborted: %s", res.Aborted)
		}
		if res.InvariantViolations != 0 {
			t.Fatalf("%d violations, first: %s", res.InvariantViolations, res.FirstViolation)
		}
		if res.TracesBackedOut == 0 || res.PhaseClears == 0 {
			t.Fatalf("recovery paths idle under chaos: backouts=%d clears=%d",
				res.TracesBackedOut, res.PhaseClears)
		}
	})
}

// TestConfigValidate covers the descriptive-rejection satellite: each
// misconfiguration must produce an error (and NewSystem must panic with
// it), while the stock configurations pass.
func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	if err := BaselineConfig(HW8x8).Validate(); err != nil {
		t.Fatalf("BaselineConfig invalid: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero issue width", func(c *Config) { c.CPU.IssueWidth = 0 }},
		{"zero mem latency", func(c *Config) { c.Mem.MemLatency = 0 }},
		{"negative bus occupancy", func(c *Config) { c.Mem.BusOccupancy = -1 }},
		{"non-power-of-two line", func(c *Config) { c.Mem.LineSize = 48 }},
		{"zero inflight", func(c *Config) { c.Mem.MaxInFlight = 0 }},
		{"zero DLT window", func(c *Config) { c.DLT.WindowSize = 0 }},
		{"zero DLT assoc", func(c *Config) { c.DLT.Assoc = 0 }},
		{"zero watch capacity", func(c *Config) { c.WatchCapacity = 0 }},
		{"zero event queue", func(c *Config) { c.EventQueueCap = 0 }},
		{"max distance below 1", func(c *Config) { c.MaxDistanceCap = 0 }},
		{"scratch reg out of file", func(c *Config) { c.ScratchReg = 200 }},
		{"backout ratio above 1", func(c *Config) { c.Backout = true; c.BackoutRatio = 1.5 }},
		{"backout ratio negative", func(c *Config) { c.Backout = true; c.BackoutRatio = -0.1 }},
		{"backout zero entries", func(c *Config) { c.Backout = true; c.BackoutMinEntries = 0 }},
		{"phase zero window", func(c *Config) { c.PhaseClearMature = true; c.PhaseWindow = 0 }},
		{"phase zero delta", func(c *Config) { c.PhaseClearMature = true; c.PhaseDelta = 0 }},
		{"negative livelock window", func(c *Config) { c.LivelockWindow = -1 }},
		{"negative monitor period", func(c *Config) { c.ChaosMonitorEvery = -5 }},
		{"bad chaos schedule", func(c *Config) {
			c.Chaos = &chaos.Schedule{Events: []chaos.Event{{Kind: chaos.DLTFlush, At: -3}}}
		}},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	t.Run("NewSystemPanics", func(t *testing.T) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("NewSystem accepted an invalid config")
			}
			if !strings.Contains(r.(string), "invalid config") {
				t.Fatalf("unexpected panic: %v", r)
			}
		}()
		cfg := DefaultConfig()
		cfg.DLT.WindowSize = 0
		NewSystem(cfg, strideWorkload(1024, 64, 0))
	})
}

// TestChaosZeroOverheadPathIdentical: a Config without chaos must behave
// exactly as before the harness existed — same Results as a config that
// carries an empty schedule (no events, no monitor, no shadow).
func TestChaosNoFaultsMatchesNoChaos(t *testing.T) {
	plain := DefaultConfig()
	r1 := NewSystem(plain, strideWorkload(32768, 64, 2)).Run(200_000)

	empty := DefaultConfig()
	empty.Chaos = &chaos.Schedule{Preset: "empty", Seed: 0}
	empty.ChaosMonitorEvery = 0 // no watchdog either
	r2 := NewSystem(empty, strideWorkload(32768, 64, 2)).Run(200_000)

	// ChaosFaults is 0 on both; every other field must agree too.
	if r1 != r2 {
		t.Fatalf("empty chaos schedule perturbed the run:\n%v\nvs\n%v", r1, r2)
	}
}
