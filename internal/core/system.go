package core

import (
	"fmt"

	"tridentsp/internal/branchpred"
	"tridentsp/internal/chaos"
	"tridentsp/internal/cpu"
	"tridentsp/internal/dlt"
	"tridentsp/internal/hwpref"
	"tridentsp/internal/isa"
	"tridentsp/internal/memsys"
	"tridentsp/internal/prefetch"
	"tridentsp/internal/program"
	"tridentsp/internal/streambuf"
	"tridentsp/internal/telemetry"
	"tridentsp/internal/trace"
	"tridentsp/internal/trident"
)

func isaReg(v uint8) isa.Reg { return isa.Reg(v) }

// codeCacheOffset places the code cache well above any program image.
const codeCacheOffset = 64 << 20

// System is one simulated machine running one program.
type System struct {
	cfg Config

	pristine *program.Program
	mem      *program.Memory
	// image is the program's immutable paged data image: the copy-on-write
	// base mem was cloned from, and the diff base for region-of-interest
	// checkpoints (SaveROI). Shared read-only across every run of the same
	// workload master.
	image  *program.Memory
	hier   *memsys.Hierarchy
	sb     *streambuf.StreamBuffers
	hwp    *hwpref.Selector
	bp     *branchpred.Predictor
	live   *cpu.ProgramSpace
	cache  *trident.CodeCache
	thread *cpu.Thread

	prof   *trident.Profiler
	watch  *trident.WatchTable
	table  *dlt.Table
	vpt    *trident.VPT
	queue  *trident.Queue
	helper *trident.Helper
	opt    *prefetch.Optimizer

	// Execution-loop state. patched is a bitmap over the original code
	// segment (one entry per instruction word) marking trace-head words
	// rewritten into branches; the per-step membership probe was a map
	// lookup on the hot path.
	curPl          *trident.Placement
	traversalStart int64
	inTraversal    bool
	lastNow        int64
	patched        []bool
	patchedBase    uint64
	apply          func(now int64) error
	applyAt        int64
	interfering    bool

	// Telemetry (nil without cfg.Telemetry; every Emit through a nil
	// tracer is one branch). fpReasons counts fast-path exit reasons —
	// the slow-path trigger histogram.
	tel       *telemetry.Tracer
	fpReasons [telemetry.NumFPReasons]*telemetry.Counter

	// Superblock batch state (fastpath.go). sbPl/sbEntry describe the batch
	// being executed so the SBHooks (bound once in sbTraceHooks/sbOrigHooks)
	// can observe it; sbHeadPending defers a trace-head traversal record
	// until the batch proves the head instruction retired.
	sbTraceHooks  cpu.SBHooks
	sbOrigHooks   cpu.SBHooks
	sbPl          *trident.Placement
	sbEntry       uint64
	sbHeadPending bool

	// Trace back-out bookkeeping (per live trace ID).
	activity map[int]*traceActivity

	// Fault injection (nil without cfg.Chaos).
	chaosRun    *chaos.Run
	monitor     *chaos.Monitor
	shadow      *System // lockstep unoptimized twin for transparency checks
	latFactors  []int64 // active latency multipliers (overlapping windows)
	assocLimits []int   // active DLT associativity squeezes

	// aborted is the Run-abort reason ("" while healthy).
	aborted string

	// Divergence sentinel (sentinel.go; armed by cfg.SentinelEvery).
	// sentinelSnap holds the serialized state at the open window's start;
	// nil means no window is open and the next one opens at sentinelNextAt
	// original instructions. faultAt is the test hook for injecting a
	// fast-path corruption; deliberately not serialized, so the sentinel's
	// healing replay is clean.
	sentinelNextAt uint64
	sentinelSnap   []byte
	sentinelSnapAt uint64
	faultAt        uint64
	faultReg       uint8
	faultMask      uint64

	// Phase detection state.
	phaseMarkInstrs uint64
	phaseMarkMisses uint64
	phaseRate       float64
	phaseRateValid  bool

	// Accounting. origInstrs counts original instructions retired by detailed
	// execution; ffwdInstrs counts those advanced functionally by FastForward
	// (sampled runs, DESIGN §14). Total program progress is their sum.
	origInstrs uint64
	ffwdInstrs uint64
	stats      runStats

	// Per-tier residency (DESIGN §13): weighted instructions and cycles
	// retired on the reference loop, the interpreting batch engine, and the
	// JIT tier. Engine-class telemetry: exported through the metrics
	// registry only, never part of Results and never serialized, so reports
	// stay byte-identical across engine choices and restores.
	tiers [numTiers]tierStat
}

// Execution tiers (tierStat indices).
const (
	tierSlow  = iota // reference one-step loop
	tierBatch        // superblock interpreter (ExecSuperBlock)
	tierJIT          // compiled closure chains (ExecCompiled)
	numTiers
)

// tierStat is one tier's residency counters.
type tierStat struct {
	instrs uint64 // weighted (original) instructions retired
	cycles uint64 // cycles the clock advanced while this tier retired
}

// tierNames label the tiers in the metrics registry.
var tierNames = [numTiers]string{"slow", "batch", "jit"}

// runStats accumulates core-level statistics during Run.
type runStats struct {
	tracesFormed      uint64
	tracesBackedOut   uint64
	tracesSpecialized uint64
	phaseClears       uint64
	missesTotal       uint64
	missesInTrace     uint64
	missesCovered     uint64
	loadsInTrace      uint64
	loadsTotal        uint64
	applyErrors       uint64
	traceTraversal    uint64
	sentinelChecks    uint64
	sentinelTrips     uint64
}

// traceActivity tracks a loop trace's usefulness for the back-out policy.
type traceActivity struct {
	entries    uint64
	traversals uint64
	hasLoop    bool
	hasLoopSet bool
}

// NewSystem builds a machine for the program. The configuration must pass
// Config.Validate; NewSystem panics on an invalid one (matching the
// substrate constructors — an invalid machine cannot produce meaningful
// results). CLIs validate first for friendly errors.
func NewSystem(cfg Config, prog *program.Program) *System {
	if err := cfg.Validate(); err != nil {
		panic("core: invalid config: " + err.Error())
	}
	s := &System{
		cfg:         cfg,
		pristine:    prog.Pristine(),
		mem:         program.NewMemory(prog),
		image:       prog.Image(),
		hier:        memsys.New(cfg.Mem),
		bp:          branchpred.New(branchpred.DefaultConfig()),
		patched:     make([]bool, len(prog.Code)),
		patchedBase: prog.Base,
		activity:    make(map[int]*traceActivity),
	}
	// Trace formation re-walks the same hot words on every event; decode
	// the pristine image once instead of per fetch.
	s.pristine.Predecode()
	if cfg.Telemetry != nil {
		s.initTelemetry(*cfg.Telemetry)
	}
	if sc, ok := cfg.streambufConfig(); ok {
		s.sb = streambuf.New(sc, s.hier)
		s.hier.SetPrefetcher(s.sb)
	} else if hwp := cfg.buildArsenal(s.hier); hwp != nil {
		s.hwp = hwp
		s.hwp.SetTracer(s.tel)
		s.hier.SetPrefetcher(s.hwp)
	}
	s.live = cpu.NewProgramSpace(prog)
	s.cache = trident.NewCodeCache(prog.CodeEnd() + codeCacheOffset)
	s.thread = cpu.New(cfg.CPU, s, prog.Entry, s.mem, s.hier, s.bp)

	if cfg.Trident {
		s.prof = trident.NewProfiler(cfg.Profiler)
		s.watch = trident.NewWatchTable(cfg.WatchCapacity)
		s.table = dlt.New(cfg.DLT)
		s.queue = trident.NewQueue(cfg.EventQueueCap)
		s.helper = trident.NewHelper(cfg.Cost)
		if cfg.ValueSpecialize {
			s.vpt = trident.NewVPT(cfg.VPT)
		}
		if cfg.SW != SWOff {
			s.opt = prefetch.New(cfg.prefetchConfig(), s.table, s.cache,
				s.watch, linkerFunc(s.linkTrace), cfg.Cost)
		}
		if s.tel != nil {
			s.table.SetTracer(s.tel)
			s.queue.SetTracer(s.tel)
			s.helper.SetTracer(s.tel)
			if s.opt != nil {
				s.opt.SetTracer(s.tel)
			}
		}
	}
	if cfg.Chaos != nil {
		s.chaosRun = cfg.Chaos.Start()
		if cfg.ChaosMonitorEvery > 0 {
			s.attachWatchdog()
		}
	}
	s.sentinelNextAt = cfg.SentinelEvery
	s.initSBHooks()
	return s
}

// linkerFunc adapts a function to prefetch.Linker.
type linkerFunc func(startPC, addr uint64) error

func (f linkerFunc) LinkTrace(startPC, addr uint64) error { return f(startPC, addr) }

// Fetch implements cpu.CodeSpace, composing the code cache over the live
// (patched) program image.
func (s *System) Fetch(pc uint64) (isa.Inst, bool) {
	if s.cache.Contains(pc) {
		return s.cache.Fetch(pc)
	}
	return s.live.Fetch(pc)
}

// linkTrace patches the original binary so startPC branches into the code
// cache. In the §5.1 overhead experiment (LinkTraces=false) it is a no-op:
// the optimizer does all its work but execution never uses it.
func (s *System) linkTrace(startPC, addr uint64) error {
	if !s.cfg.LinkTraces {
		return nil
	}
	br := isa.Inst{Op: isa.BR, Rd: isa.ZeroReg, Imm: isa.BranchDisp(startPC, addr)}
	w, err := isa.EncodeChecked(br)
	if err != nil {
		return err
	}
	if err := s.live.Patch(startPC, w); err != nil {
		return err
	}
	s.setPatched(startPC, true)
	return nil
}

// isPatched reports whether the original-code word at pc carries a trace
// link patch. PCs outside the original image (the code cache) are never
// patched.
func (s *System) isPatched(pc uint64) bool {
	i := (pc - s.patchedBase) / isa.WordSize
	return pc >= s.patchedBase && i < uint64(len(s.patched)) && s.patched[i]
}

func (s *System) setPatched(pc uint64, v bool) {
	if i := (pc - s.patchedBase) / isa.WordSize; pc >= s.patchedBase && i < uint64(len(s.patched)) {
		s.patched[i] = v
	}
}

// Thread exposes the main hardware context (register setup for workloads).
func (s *System) Thread() *cpu.Thread { return s.thread }

// Hierarchy exposes the memory system (examples and tests inspect stats).
func (s *System) Hierarchy() *memsys.Hierarchy { return s.hier }

// Optimizer exposes the prefetch optimizer (nil when SW is off).
func (s *System) Optimizer() *prefetch.Optimizer { return s.opt }

// DLT exposes the delinquent load table (nil without Trident).
func (s *System) DLT() *dlt.Table { return s.table }

// HWPref exposes the arsenal prefetch selector (nil unless Config.HW
// selects an arsenal backend); the determinism and re-convergence suites
// compare its decision log.
func (s *System) HWPref() *hwpref.Selector { return s.hwp }

// Run executes until origInstrs original instructions have committed (or
// the program halts), returning the results. When LivelockWindow is set
// and no original instruction commits for that many cycles (a self-loop
// after a bad patch can spin forever without retiring original work), the
// run is aborted with the reason in Results.Aborted. Run is resumable: a
// later call with a higher limit continues the same machine.
func (s *System) Run(limit uint64) Results {
	s.syncShadowInit()
	if s.cfg.LivelockWindow == 0 {
		// No livelock detection: skip the per-step progress bookkeeping
		// entirely.
		for s.origInstrs < limit && !s.thread.Halted() && s.aborted == "" {
			s.sentinelTick()
			s.fastForward(limit)
			if s.origInstrs >= limit || s.thread.Halted() {
				break
			}
			s.step()
		}
		return s.results()
	}
	lastInstrs := s.origInstrs
	lastProgress := s.thread.Now()
	for s.origInstrs < limit && !s.thread.Halted() && s.aborted == "" {
		s.sentinelTick()
		// Fast-path batches always retire original instructions or stop at
		// an event boundary within a trace; either way they count as
		// progress checkpoints just like the slow steps below.
		s.fastForward(limit)
		if s.origInstrs != lastInstrs {
			lastInstrs = s.origInstrs
			lastProgress = s.thread.Now()
		}
		if s.origInstrs >= limit || s.thread.Halted() {
			break
		}
		s.step()
		if s.origInstrs != lastInstrs {
			lastInstrs = s.origInstrs
			lastProgress = s.thread.Now()
		} else if s.thread.Now()-lastProgress >= s.cfg.LivelockWindow {
			s.aborted = fmt.Sprintf(
				"livelock: no original-instruction progress for %d cycles (pc=%#x, cycle=%d)",
				s.thread.Now()-lastProgress, s.thread.PC(), s.thread.Now())
		}
	}
	return s.results()
}

// step advances the machine by one committed instruction.
func (s *System) step() {
	info := s.thread.Step()
	if info.Halted {
		return
	}
	pc := info.PC
	now := info.Now
	instrsBefore := s.origInstrs

	// Fault injection: apply every chaos edge that has come due.
	if s.chaosRun != nil && now >= s.chaosRun.NextAt() {
		for _, ed := range s.chaosRun.Due(now) {
			s.applyChaosEdge(ed)
		}
	}

	// Placement tracking: which hot trace (if any) is executing. The
	// containment probe is resolved once and reused by the branch-profiling
	// filter below.
	var pl *trident.Placement
	inCache := s.cache.Contains(pc)
	if inCache {
		if s.curPl != nil && pc >= s.curPl.Start && pc < s.curPl.End {
			pl = s.curPl
		} else if p, ok := s.cache.PlacementAt(pc); ok {
			pl = p
		}
	}

	// Original-instruction accounting (§4.1).
	switch {
	case pl != nil:
		s.origInstrs += uint64(s.cache.Weight(pc))
	case s.isPatched(pc):
		// The patch branch replaces an instruction the trace accounts for.
	default:
		s.origInstrs++
	}

	// Watch-table traversal timing.
	if s.cfg.Trident {
		s.trackTraversal(pl, pc, now)
	}

	// Load monitoring. Coverage statistics count "would-be misses": true
	// misses plus prefetched hits (loads that would have missed without a
	// prefetch), so Figure 4's ratios stay meaningful once prefetching
	// starts eliminating the very misses it covers.
	if info.IsLoad {
		s.stats.loadsTotal++
		if wouldMiss(info.LoadRes) {
			s.stats.missesTotal++
		}
		if s.cfg.Trident {
			s.monitorLoad(pl, pc, info)
		}
	}

	// Branch profiling (original code only: in-trace loop branches target
	// the code cache and must not seed new traces).
	if s.cfg.Trident && pl == nil && !inCache {
		switch info.Branch {
		case cpu.BranchTaken, cpu.BranchNotTaken:
			taken := info.Branch == cpu.BranchTaken
			target := isa.BranchTarget(pc, info.Inst)
			if hot, fired := s.prof.OnCondBranch(pc, target, taken); fired {
				s.enqueueHot(hot, now)
			}
		case cpu.BranchJump:
			if info.Inst.Op == isa.BR {
				s.prof.OnJump(pc, isa.BranchTarget(pc, info.Inst))
			}
		}
	}

	// Phase detection: a shifted miss rate re-arms matured loads.
	if s.cfg.Trident && s.cfg.PhaseClearMature &&
		s.origInstrs-s.phaseMarkInstrs >= s.cfg.PhaseWindow {
		s.checkPhase(now)
	}

	// Helper thread: apply finished optimizations, start new ones.
	if s.cfg.Trident {
		s.pump(now)
		busy := s.helper.Busy(now)
		if busy != s.interfering {
			s.interfering = busy
			s.thread.SetInterference(busy)
		}
	}

	s.tiers[tierSlow].instrs += s.origInstrs - instrsBefore
	if d := now - s.lastNow; d > 0 {
		s.tiers[tierSlow].cycles += uint64(d)
	}
	s.curPl = pl
	s.lastNow = now

	// Invariant watchdog probe (chaotic runs only).
	if s.monitor != nil && now >= s.monitor.NextAt() {
		s.monitor.Tick(now)
	}
}

// checkPhase compares the last window's miss rate against the previous
// window's; a large relative change clears the DLT's mature flags (§3.5.2's
// future-work suggestion). now stamps the telemetry event.
func (s *System) checkPhase(now int64) {
	dInstrs := s.origInstrs - s.phaseMarkInstrs
	dMisses := s.stats.missesTotal - s.phaseMarkMisses
	s.phaseMarkInstrs = s.origInstrs
	s.phaseMarkMisses = s.stats.missesTotal
	rate := float64(dMisses) / float64(dInstrs)
	defer func() { s.phaseRate, s.phaseRateValid = rate, true }()
	if !s.phaseRateValid {
		return
	}
	ref := s.phaseRate
	if ref < 1e-6 {
		ref = 1e-6
	}
	if rate > ref*(1+s.cfg.PhaseDelta) || rate < ref*(1-s.cfg.PhaseDelta) {
		n := s.table.ClearAllMature()
		if s.opt != nil {
			s.opt.ClearMaturity()
		}
		s.stats.phaseClears++
		s.tel.Emit(telemetry.KindPhaseClear, now, 0, 0, int64(n), 0)
	}
}

// wouldMiss reports whether a load access either missed or only hit
// because a prefetch covered it.
func wouldMiss(r memsys.Result) bool {
	return r.L1Miss || r.Outcome == memsys.HitPrefetched
}

// trackTraversal updates the watch table's per-traversal timing: a
// traversal completes when the trace loops back to its own start.
func (s *System) trackTraversal(pl *trident.Placement, pc uint64, now int64) {
	switch {
	case pl == nil:
		s.inTraversal = false
	case pl != s.curPl:
		// Entered a trace.
		s.traversalStart = s.lastNow
		s.inTraversal = true
		if pl.Live {
			if _, ok := s.watch.ByID(pl.TraceID); !ok {
				// Self-healing: the watch entry was evicted (capacity
				// pressure or an injected eviction storm) while the trace
				// stayed linked. Re-register it so timing history rebuilds
				// and delinquent events can reach the optimizer again —
				// without this an evicted trace would run unmonitored and
				// unrepairable forever.
				s.watch.Add(&trident.WatchEntry{
					StartPC: pl.Trace.StartPC,
					TraceID: pl.TraceID,
					Length:  pl.Trace.Len(),
				})
			}
		}
		if s.cfg.Backout {
			s.noteEntry(pl, now)
		}
	case pc == pl.Start && s.inTraversal:
		// Loop-back: one full traversal.
		if we, ok := s.watch.ByID(pl.TraceID); ok {
			we.RecordTraversal(s.lastNow - s.traversalStart)
		}
		s.stats.traceTraversal++
		s.traversalStart = s.lastNow
		if s.cfg.Backout {
			if a := s.activity[pl.TraceID]; a != nil {
				a.traversals++
			}
		}
	}
}

// noteEntry counts a trace entry and backs the trace out if it keeps
// exiting without completing a traversal — the captured path was not the
// hot path after all, so the head is unpatched and the profiler re-armed
// to capture a better bitmap.
func (s *System) noteEntry(pl *trident.Placement, now int64) {
	a := s.activity[pl.TraceID]
	if a == nil {
		a = &traceActivity{}
		s.activity[pl.TraceID] = a
	}
	if !a.hasLoopSet {
		a.hasLoopSet = true
		for i := range pl.Trace.Insts {
			if pl.Trace.Insts[i].Kind == trace.LoopBranch {
				a.hasLoop = true
				break
			}
		}
	}
	a.entries++
	if !a.hasLoop || !pl.Live || a.entries < s.cfg.BackoutMinEntries {
		return
	}
	if float64(a.traversals) >= s.cfg.BackoutRatio*float64(a.entries) {
		return
	}
	s.backOut(pl, now)
}

// unlinkTrace detaches a placed trace from execution: the original head
// instruction is restored from the pristine image, the placement retired
// and drained (loop-back branches retargeted through the original head, so
// execution already inside it exits safely), the watch entry dropped, and
// the profiler re-armed for this head. Shared by the back-out policy and
// injected code-cache evictions; now stamps the telemetry event.
func (s *System) unlinkTrace(pl *trident.Placement, now int64) {
	head := pl.Trace.StartPC
	s.tel.Emit(telemetry.KindTraceBackOut, now, head, 0, int64(pl.TraceID), 0)
	if w, ok := s.pristine.WordAt(head); ok && s.isPatched(head) {
		if err := s.live.Patch(head, w); err == nil {
			s.setPatched(head, false)
		}
	}
	s.cache.Retire(pl.TraceID)
	if err := s.cache.RetargetLoops(pl.TraceID, head); err != nil {
		s.stats.applyErrors++
	}
	s.watch.Remove(pl.TraceID)
	s.prof.ClearFormed(head)
	if s.opt != nil {
		s.opt.ForgetTrace(head)
	}
	if s.vpt != nil {
		// A specialized trace whose guard started failing drains here;
		// re-arm the profiler's value entries so a new stable value can
		// be discovered.
		s.vpt.Despecialize()
	}
	delete(s.activity, pl.TraceID)
}

// backOut unlinks an under-performing trace (the captured path was not the
// hot path after all).
func (s *System) backOut(pl *trident.Placement, now int64) {
	s.unlinkTrace(pl, now)
	s.stats.tracesBackedOut++
}

// monitorLoad feeds the DLT for loads executing inside hot traces and
// raises delinquent-load events. In the link-disabled overhead experiment
// no trace ever executes, so — exactly as in the paper's §5.1 setup — the
// DLT stays silent and only trace-formation events occupy the helper.
func (s *System) monitorLoad(pl *trident.Placement, pc uint64, info cpu.StepInfo) {
	if pl == nil {
		return
	}
	idx := (pc - pl.Start) / isa.WordSize
	ti := &pl.Trace.Insts[idx]
	if ti.Inserted || ti.OrigPC == 0 {
		return
	}
	origPC, headPC := ti.OrigPC, pl.Trace.StartPC

	s.stats.loadsInTrace++
	if s.vpt != nil && s.vpt.Update(origPC, info.LoadValue) {
		ev := trident.Event{Kind: trident.EventInvariantLoad, Raised: info.Now, LoadPC: origPC}
		ev.Hot.StartPC = headPC
		s.queue.Push(ev)
	}
	if wouldMiss(info.LoadRes) {
		s.stats.missesInTrace++
		if s.opt != nil && s.opt.Covered(headPC, origPC) {
			s.stats.missesCovered++
		}
	}
	miss := info.LoadRes.L1Miss
	var missLat int64
	if miss {
		missLat = info.LoadRes.Latency
	}
	if !s.table.UpdateAt(origPC, info.LoadAddr, miss, missLat, info.Now) {
		return
	}
	// Delinquent-load event. Suppressed while the trace is already being
	// re-optimized (§3.2's watch-table optimization flag).
	if s.opt == nil {
		s.table.ClearCounters(origPC)
		return
	}
	we, ok := s.watch.ByStart(headPC)
	if !ok || we.OptFlag {
		// Event suppressed (the trace is already being re-optimized):
		// restart this load's monitoring window, or it would stay frozen
		// forever and never raise another event.
		s.table.ClearCounters(origPC)
		return
	}
	ev := trident.Event{
		Kind:    trident.EventDelinquentLoad,
		Raised:  info.Now,
		LoadPC:  origPC,
		TraceID: we.TraceID,
	}
	ev.Hot.StartPC = headPC
	if s.queue.Push(ev) {
		we.OptFlag = true
	} else {
		s.table.ClearCounters(origPC)
	}
}

// enqueueHot raises a hot-trace event, reporting whether the event queue
// actually changed (the fast path must end its batch then, so the pump runs
// at the same cycle the slow path's would).
func (s *System) enqueueHot(hot trident.HotTrace, now int64) bool {
	if _, exists := s.watch.ByStart(hot.StartPC); exists {
		s.prof.MarkFormed(hot.StartPC)
		return false
	}
	return s.queue.Push(trident.Event{Kind: trident.EventHotTrace, Raised: now, Hot: hot})
}

// pump applies a completed optimization and dispatches the next queued
// event to the helper thread.
func (s *System) pump(now int64) {
	if s.apply != nil && now >= s.applyAt {
		if err := s.apply(now); err != nil {
			s.stats.applyErrors++
			if DebugLog != nil {
				DebugLog("apply error: " + err.Error())
			}
		}
		s.apply = nil
	}
	if s.apply != nil || s.helper.Busy(now) {
		return
	}
	ev, ok := s.queue.Pop()
	if !ok {
		return
	}
	switch ev.Kind {
	case trident.EventHotTrace:
		s.processHotTrace(ev, now)
	case trident.EventDelinquentLoad:
		s.processDelinquent(ev, now)
	case trident.EventInvariantLoad:
		s.processInvariant(ev, now)
	}
}

// processHotTrace forms, optimizes, places, and links a new hot trace.
func (s *System) processHotTrace(ev trident.Event, now int64) {
	if _, exists := s.watch.ByStart(ev.Hot.StartPC); exists {
		// A queued duplicate: the head already has a trace.
		return
	}
	tr, err := trace.Form(s.pristine, ev.Hot.StartPC, ev.Hot.Bitmap, s.cfg.Form)
	if err != nil || tr.Len() < 3 {
		// Unformable or degenerate: charge a minimal probe cost.
		s.helper.Begin(now, s.cfg.Cost.FormBase)
		s.prof.MarkFormed(ev.Hot.StartPC)
		return
	}
	trace.Optimize(tr)
	cost := s.cfg.Cost.FormBase + s.cfg.Cost.FormPerInst*int64(tr.Len())
	done := s.helper.Begin(now, cost)
	s.applyAt = done
	s.apply = func(at int64) error {
		pl, err := s.cache.Place(tr)
		if err != nil {
			return err
		}
		s.watch.Add(&trident.WatchEntry{
			StartPC: tr.StartPC,
			TraceID: pl.TraceID,
			Length:  tr.Len(),
		})
		if s.opt != nil {
			s.opt.RegisterTrace(tr.StartPC, tr, pl.TraceID)
		}
		s.prof.MarkFormed(tr.StartPC)
		s.stats.tracesFormed++
		s.tel.Emit(telemetry.KindTraceForm, at, tr.StartPC, pl.Start,
			int64(tr.Len()), int64(pl.TraceID))
		return s.linkTrace(tr.StartPC, pl.Start)
	}
}

// DebugLog, when non-nil, receives one line per optimization event.
var DebugLog func(string)

// processInvariant value-specializes a trace around a quasi-invariant load
// (the prior Trident work's optimization). Specialization regenerates the
// trace, so it defers to prefetching when prefetch code is already placed —
// the prefetch state would not survive the rebuild.
func (s *System) processInvariant(ev trident.Event, now int64) {
	head := ev.Hot.StartPC
	we, ok := s.watch.ByStart(head)
	if !ok || we.OptFlag {
		return
	}
	pl, ok := s.cache.PlacementByID(we.TraceID)
	if !ok || !pl.Live {
		return
	}
	value, stable := s.vpt.Value(ev.LoadPC)
	if !stable {
		return
	}
	// Specialize the prefetch-free base version; any prefetch code is
	// re-inserted by later delinquent events on top of the specialized
	// body (distances restart, which the repair loop re-converges).
	var clone *trace.Trace
	if s.opt != nil {
		if base, ok := s.opt.BaseTrace(head); ok {
			clone = base
		}
	}
	if clone == nil {
		clone = pl.Trace.Clone()
	}
	idx := -1
	for i := range clone.Insts {
		if !clone.Insts[i].Inserted && clone.Insts[i].OrigPC == ev.LoadPC &&
			clone.Insts[i].Inst.Op == isa.LD {
			idx = i
			break
		}
	}
	if idx < 0 || !trace.SpecializeLoad(clone, idx, value, isaReg(s.cfg.GuardReg)) {
		return
	}
	trace.Optimize(clone)

	cost := s.cfg.Cost.FormBase + s.cfg.Cost.FormPerInst*int64(clone.Len())
	done := s.helper.Begin(now, cost)
	oldID := we.TraceID
	loadPC := ev.LoadPC
	s.applyAt = done
	s.apply = func(at int64) error {
		npl, err := s.cache.Place(clone)
		if err != nil {
			return err
		}
		s.cache.Retire(oldID)
		if err := s.cache.RetargetLoops(oldID, head); err != nil {
			return err
		}
		ne := &trident.WatchEntry{StartPC: head, TraceID: npl.TraceID, Length: clone.Len()}
		if oe, ok := s.watch.ByID(oldID); ok {
			ne.MinExecTime = oe.MinExecTime
			ne.TotalExecTime = oe.TotalExecTime
			ne.Traversals = oe.Traversals
		}
		s.watch.Remove(oldID)
		s.watch.Add(ne)
		if s.opt != nil {
			s.opt.RegisterTrace(head, clone, npl.TraceID)
		}
		s.stats.tracesSpecialized++
		s.tel.Emit(telemetry.KindTraceSpecialize, at, head, loadPC,
			int64(clone.Len()), int64(npl.TraceID))
		return s.linkTrace(head, npl.Start)
	}
}

// processDelinquent runs the prefetch optimizer for one event.
func (s *System) processDelinquent(ev trident.Event, now int64) {
	res := s.opt.ProcessEventAt(ev.Hot.StartPC, ev.LoadPC, now)
	if DebugLog != nil {
		minExec := int64(-1)
		if we, ok := s.watch.ByStart(ev.Hot.StartPC); ok {
			minExec = we.MinExecTime
		}
		DebugLog(fmt.Sprintf("delinquent head=%#x load=%#x -> %v cost=%d dist=%d minExec=%d",
			ev.Hot.StartPC, ev.LoadPC, res.Kind, res.Cost,
			s.opt.Distance(ev.Hot.StartPC, ev.LoadPC), minExec))
	}
	cost := res.Cost
	if cost <= 0 {
		cost = s.cfg.Cost.RepairCost
	}
	done := s.helper.Begin(now, cost)
	startPC := ev.Hot.StartPC
	inner := res.Apply
	s.applyAt = done
	s.apply = func(int64) error {
		if we, ok := s.watch.ByStart(startPC); ok {
			we.OptFlag = false
		}
		if inner != nil {
			return inner()
		}
		return nil
	}
}
