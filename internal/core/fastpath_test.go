package core

import (
	"fmt"
	"testing"

	"tridentsp/internal/chaos"
	"tridentsp/internal/isa"
	"tridentsp/internal/memsys"
	"tridentsp/internal/workloads"
)

// The fast path (fastpath.go, cpu.ExecBlock) claims bit-identical machine
// behaviour to the reference one-step loop. These tests prove it by running
// every workload, a config ablation matrix, and every chaos preset twice —
// once per path — and requiring Results (a comparable struct: == is the
// exact check), the final PC, and the full register file to match exactly.

// diffRun executes the same benchmark twice, with the fast path enabled and
// disabled, and fails the test on any observable divergence.
func diffRun(t *testing.T, label string, cfg Config, bm workloads.Benchmark,
	sc workloads.Scale, limit uint64) {
	t.Helper()
	fast := cfg
	fast.DisableFastPath = false
	slow := cfg
	slow.DisableFastPath = true

	sysF := NewSystem(fast, bm.Build(sc))
	sysS := NewSystem(slow, bm.Build(sc))
	resF := sysF.Run(limit)
	resS := sysS.Run(limit)

	if resF != resS {
		t.Errorf("%s: Results diverged\nfast: %+v\nslow: %+v", label, resF, resS)
		return
	}
	if pcF, pcS := sysF.Thread().PC(), sysS.Thread().PC(); pcF != pcS {
		t.Errorf("%s: final PC diverged: fast %#x, slow %#x", label, pcF, pcS)
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if vF, vS := sysF.Thread().Reg(r), sysS.Thread().Reg(r); vF != vS {
			t.Errorf("%s: r%d diverged: fast %#x, slow %#x", label, r, vF, vS)
		}
	}
	// The memory system is where the fast path actually diverges in
	// mechanism (LoadFast probe, inline stores and prefetches, deferred
	// sweeps), so its counters are asserted explicitly: first the per-
	// outcome load classification — partial hits and prefetch-displacement
	// misses are where timing bugs would surface — then the whole Stats
	// struct (comparable, so == is the exact check).
	stF, stS := sysF.hier.Stats, sysS.hier.Stats
	for o := memsys.Outcome(0); int(o) < memsys.NumOutcomes; o++ {
		if stF.ByOutcome[o] != stS.ByOutcome[o] {
			t.Errorf("%s: %v loads diverged: fast %d, slow %d",
				label, o, stF.ByOutcome[o], stS.ByOutcome[o])
		}
	}
	if stF != stS {
		t.Errorf("%s: memsys.Stats diverged\nfast: %+v\nslow: %+v", label, stF, stS)
	}
}

func TestFastPathDifferentialAllWorkloads(t *testing.T) {
	for _, bm := range workloads.All() {
		bm := bm
		t.Run(bm.Name, func(t *testing.T) {
			diffRun(t, bm.Name, DefaultConfig(), bm, workloads.ScaleSmall, 200_000)
		})
	}
}

func TestFastPathDifferentialConfigMatrix(t *testing.T) {
	matrix := []struct {
		name string
		cfg  Config
	}{
		{"baseline-none", BaselineConfig(HWNone)},
		{"baseline-4x4", BaselineConfig(HW4x4)},
		{"baseline-8x8", BaselineConfig(HW8x8)},
		{"default", DefaultConfig()},
		{"sw-basic", func() Config { c := DefaultConfig(); c.SW = SWBasic; return c }()},
		{"sw-whole-object", func() Config { c := DefaultConfig(); c.SW = SWWholeObject; return c }()},
		{"sw-off-trident", func() Config { c := DefaultConfig(); c.SW = SWOff; return c }()},
		{"link-disabled", func() Config { c := DefaultConfig(); c.LinkTraces = false; return c }()},
		{"backout", func() Config {
			c := DefaultConfig()
			c.Backout = true
			c.BackoutMinEntries = 64
			c.BackoutRatio = 0.9
			return c
		}()},
		{"valspec", func() Config { c := DefaultConfig(); c.ValueSpecialize = true; return c }()},
		{"phase", func() Config {
			c := DefaultConfig()
			c.PhaseClearMature = true
			c.PhaseWindow = 20_000
			c.PhaseDelta = 0.1
			return c
		}()},
		{"estimate-init", func() Config { c := DefaultConfig(); c.InitFromEstimate = true; return c }()},
		{"no-deref", func() Config { c := DefaultConfig(); c.DerefPointers = false; return c }()},
		{"no-livelock", func() Config { c := DefaultConfig(); c.LivelockWindow = 0; return c }()},
	}
	for _, bench := range []string{"swim", "mcf", "art"} {
		bm, ok := workloads.ByName(bench)
		if !ok {
			t.Fatalf("unknown benchmark %q", bench)
		}
		for _, m := range matrix {
			m := m
			t.Run(bench+"/"+m.name, func(t *testing.T) {
				diffRun(t, bench+"/"+m.name, m.cfg, bm, workloads.ScaleSmall, 150_000)
			})
		}
	}
}

func TestFastPathDifferentialChaosPresets(t *testing.T) {
	for _, preset := range chaos.Presets() {
		preset := preset
		for _, bench := range []string{"swim", "mcf"} {
			bm, ok := workloads.ByName(bench)
			if !ok {
				t.Fatalf("unknown benchmark %q", bench)
			}
			t.Run(string(preset)+"/"+bench, func(t *testing.T) {
				sched, err := chaos.NewSchedule(preset, 1, 400_000)
				if err != nil {
					t.Fatal(err)
				}
				cfg := DefaultConfig()
				cfg.Backout = true
				cfg.PhaseClearMature = true
				cfg.Chaos = sched
				cfg.ChaosMonitorEvery = 20_000
				cfg.ChaosShadow = true
				diffRun(t, fmt.Sprintf("%s/%s", preset, bench), cfg, bm,
					workloads.ScaleSmall, 150_000)
			})
		}
	}
}

// TestFastPathResumableRuns guards the windowed-Run pattern the resilience
// experiment uses: repeated Run calls with growing limits must land on the
// same intermediate snapshots on both paths.
func TestFastPathResumableRuns(t *testing.T) {
	bm, _ := workloads.ByName("swim")
	sched, err := chaos.NewSchedule(chaos.PresetLatencyPhase, 1, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Chaos = sched
	cfg.ChaosMonitorEvery = 20_000

	fast := cfg
	slow := cfg
	slow.DisableFastPath = true
	sysF := NewSystem(fast, bm.Build(workloads.ScaleSmall))
	sysS := NewSystem(slow, bm.Build(workloads.ScaleSmall))
	for target := uint64(10_000); target <= 150_000; target += 10_000 {
		resF := sysF.Run(target)
		resS := sysS.Run(target)
		if resF != resS {
			t.Fatalf("windowed run diverged at target %d\nfast: %+v\nslow: %+v",
				target, resF, resS)
		}
	}
}
