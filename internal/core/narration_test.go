package core

import (
	"testing"

	"tridentsp/internal/telemetry"
)

// TestRepairLifecycleNarration runs the canonical delinquent stride loop
// with telemetry on and checks that the recorded event stream narrates the
// self-repair lifecycle coherently: every load's history starts with an
// insert (or an immediate write-off), every repair moves the distance by
// exactly ±1 from the previously narrated value, matures report the
// distance the chain arrived at, and nothing repairs a written-off load
// until a phase clear re-arms it. The stream's totals must agree with the
// run's Results — the same counters the exp tables render — and the final
// narrated distance must match the optimizer's live Distance query.
func TestRepairLifecycleNarration(t *testing.T) {
	p := strideWorkload(131072, 64, 4)
	cfg := DefaultConfig()
	cfg.HW = HWNone
	cfg.Telemetry = &telemetry.Options{}
	sys := NewSystem(cfg, p)
	res := sys.Run(3_000_000)

	type key struct{ head, load uint64 }
	type chain struct {
		dist    int64 // last narrated distance
		strided bool  // a non-zero distance was ever narrated
		mature  bool
		inserts int
		repairs int
	}
	chains := make(map[key]*chain)
	var inserts, repairs uint64
	for _, e := range events(t, sys) {
		if e.Kind == telemetry.KindPhaseClear {
			for _, c := range chains {
				c.mature = false
			}
			continue
		}
		k := key{head: e.Aux, load: e.PC}
		c := chains[k]
		switch e.Kind {
		case telemetry.KindPrefetchInsert:
			inserts++
			if c == nil {
				c = &chain{}
				chains[k] = c
			}
			c.dist = e.Arg
			c.strided = c.strided || e.Arg != 0
			c.mature = false
			c.inserts++
		case telemetry.KindPrefetchRepair:
			repairs++
			if c == nil {
				t.Fatalf("repair for %#x/%#x before any insert", k.head, k.load)
			}
			if c.mature {
				t.Fatalf("repair for %#x/%#x after mature without a phase clear", k.head, k.load)
			}
			if e.Arg2 != c.dist {
				t.Fatalf("repair chain for %#x/%#x broken: repairs %d->%d but last narrated distance was %d",
					k.head, k.load, e.Arg2, e.Arg, c.dist)
			}
			if step := e.Arg - e.Arg2; step != 1 && step != -1 {
				t.Fatalf("repair step for %#x/%#x is %+d, want ±1", k.head, k.load, step)
			}
			c.dist = e.Arg
			c.strided = true
			c.repairs++
		case telemetry.KindPrefetchMature:
			if c == nil {
				// Written off before any prefetch was placed: the only
				// legal narration is a distance-less mature.
				if e.Arg != 0 {
					t.Fatalf("mature for %#x/%#x with distance %d but no prior insert",
						k.head, k.load, e.Arg)
				}
				chains[k] = &chain{mature: true}
				continue
			}
			if want := c.dist; c.strided && e.Arg != want {
				t.Fatalf("mature for %#x/%#x reports distance %d, narration arrived at %d",
					k.head, k.load, e.Arg, want)
			}
			c.mature = true
		}
	}

	// The stream's totals are the same counters the exp tables print from
	// Results; a narration that disagreed with the table would be lying.
	if inserts != res.Insertions {
		t.Errorf("narrated %d inserts, Results counted %d", inserts, res.Insertions)
	}
	if repairs != res.Repairs {
		t.Errorf("narrated %d repairs, Results counted %d", repairs, res.Repairs)
	}
	if repairs == 0 {
		t.Fatal("stride workload narrated no repairs; lifecycle never exercised")
	}

	// The chain with the most repairs is the scripted delinquent load; its
	// final narrated distance must match the optimizer's live state.
	var bestKey key
	best := -1
	for k, c := range chains {
		if c.repairs > best {
			best, bestKey = c.repairs, k
		}
	}
	if best < 1 {
		t.Fatal("no chain recorded an insert → repair lifecycle")
	}
	c := chains[bestKey]
	if got := sys.Optimizer().Distance(bestKey.head, bestKey.load); got != c.dist {
		t.Errorf("optimizer distance for %#x/%#x is %d, narration arrived at %d",
			bestKey.head, bestKey.load, got, c.dist)
	}
}

// events returns the run's semantic stream, failing on ring overflow (a
// truncated narration would make the chain checks vacuous).
func events(t *testing.T, sys *System) []telemetry.Event {
	t.Helper()
	if n := sys.Telemetry().Dropped(); n != 0 {
		t.Fatalf("semantic ring dropped %d events; raise RingCap", n)
	}
	return sys.Telemetry().Events()
}
