package core

import (
	"fmt"

	"tridentsp/internal/chaos"
	"tridentsp/internal/isa"
	"tridentsp/internal/telemetry"
	"tridentsp/internal/trident"
)

// This file wires the chaos fault-injection schedule and invariant watchdog
// (internal/chaos) into the simulated machine. Everything here is off the
// no-chaos path: a nil Config.Chaos costs one nil check per step.

// applyChaosEdge delivers one scheduled fault edge to the machine.
// Structures the configuration does not instantiate (no Trident, no
// optimizer) absorb their faults as no-ops.
func (s *System) applyChaosEdge(ed chaos.Edge) {
	e := ed.Event
	// Stamped with the edge's scheduled cycle (not the drain cycle) so the
	// event stream is identical across execution paths by construction.
	enter := int64(0)
	if ed.Enter {
		enter = 1
	}
	s.tel.Emit(telemetry.KindChaosEdge, e.At, 0, uint64(e.Kind), e.Arg, enter)
	switch e.Kind {
	case chaos.LatencyShift, chaos.LatencySpike:
		if ed.Enter {
			s.latFactors = append(s.latFactors, e.Arg)
		} else {
			for i, f := range s.latFactors {
				if f == e.Arg {
					s.latFactors = append(s.latFactors[:i], s.latFactors[i+1:]...)
					break
				}
			}
		}
		f := s.chaosLatFactor()
		s.hier.SetMemLatency(s.cfg.Mem.MemLatency * f)
		s.hier.SetBusOccupancy(s.cfg.Mem.BusOccupancy * f)
	case chaos.CacheFlush:
		s.hier.FlushCaches()
	case chaos.DLTFlush:
		if s.table != nil {
			s.table.Flush()
		}
	case chaos.DLTSqueeze:
		if s.table == nil {
			return
		}
		if ed.Enter {
			s.assocLimits = append(s.assocLimits, int(e.Arg))
		} else {
			for i, l := range s.assocLimits {
				if l == int(e.Arg) {
					s.assocLimits = append(s.assocLimits[:i], s.assocLimits[i+1:]...)
					break
				}
			}
		}
		lim := s.cfg.DLT.Assoc
		for _, l := range s.assocLimits {
			if l < lim {
				lim = l
			}
		}
		s.table.SetAssocLimit(lim)
	case chaos.WatchEvict:
		if s.watch != nil {
			s.watch.Evict(int(e.Arg))
		}
	case chaos.CodeCacheEvict:
		if s.cfg.Trident {
			s.evictLiveTraces(int(e.Arg), e.At)
		}
	case chaos.HelperPreempt:
		if ed.Enter && s.helper != nil {
			until := e.At + e.Duration
			s.helper.Preempt(until)
			// Any optimization mid-flight loses its context: its effects
			// cannot become visible before the preemption ends.
			if s.apply != nil && s.applyAt < until {
				s.applyAt = until
			}
		}
	}
}

// chaosLatFactor is the product of the active latency multipliers, clamped
// so overlapping windows cannot run the latency away.
func (s *System) chaosLatFactor() int64 {
	f := int64(1)
	for _, x := range s.latFactors {
		f *= x
		if f >= 64 {
			return 64
		}
	}
	return f
}

// evictLiveTraces unlinks up to n live placements, most recently placed
// first (code-cache pressure evicts the newest allocations in this model).
// Each evicted trace is fully backed out of execution and must re-form from
// profiler heat if it is still hot.
func (s *System) evictLiveTraces(n int, now int64) {
	var live []*trident.Placement
	s.cache.VisitPlacements(func(pl *trident.Placement) {
		if pl.Live {
			live = append(live, pl)
		}
	})
	for i := len(live) - 1; i >= 0 && n > 0; i-- {
		s.unlinkTrace(live[i], now)
		n--
	}
}

// attachWatchdog registers the DESIGN §6 invariant checks on a
// chaos.Monitor. Checks run every ChaosMonitorEvery cycles; violations
// accumulate and surface in Results.
func (s *System) attachWatchdog() {
	m := chaos.NewMonitor(s.cfg.ChaosMonitorEvery)
	m.Register("figure6-sum", func(int64) error {
		var sum uint64
		for _, c := range s.hier.Stats.ByOutcome {
			sum += c
		}
		if sum != s.hier.Stats.Loads {
			return fmt.Errorf("outcome categories sum to %d, loads %d", sum, s.hier.Stats.Loads)
		}
		return nil
	})
	if s.table != nil {
		m.Register("dlt", func(int64) error { return s.table.CheckInvariants() })
	}
	if s.opt != nil {
		m.Register("controller", func(int64) error { return s.opt.CheckInvariants() })
	}
	if s.cfg.ChaosShadow {
		s.shadow = s.newShadow()
		m.Register("transparency", s.shadowCheck)
	}
	m.SetTracer(s.tel)
	s.monitor = m
}

// Monitor exposes the invariant watchdog (nil when chaos monitoring is
// off); experiments and tests read its violations.
func (s *System) Monitor() *chaos.Monitor { return s.monitor }

// ChaosApplied counts fault edges delivered so far (0 without chaos).
func (s *System) ChaosApplied() uint64 {
	if s.chaosRun == nil {
		return 0
	}
	return s.chaosRun.Applied
}

// newShadow builds the unoptimized twin machine for the continuous
// transparency check: same program image, same core, no Trident, no
// prefetching, no faults. Timing differs wildly — only architectural state
// is compared, and only at instruction-count sync points.
func (s *System) newShadow() *System {
	cfg := BaselineConfig(HWNone)
	cfg.CPU = s.cfg.CPU
	cfg.Mem = s.cfg.Mem
	cfg.Chaos = nil
	cfg.Telemetry = nil
	cfg.LivelockWindow = 0
	cfg.DisableFastPath = s.cfg.DisableFastPath
	return NewSystem(cfg, s.pristine.ClonePristine())
}

// syncShadowInit copies the main thread's starting registers into the
// shadow. Runs once, on the first Run call before any step: workloads may
// seed registers through Thread().SetReg after NewSystem.
func (s *System) syncShadowInit() {
	if s.shadow == nil || s.thread.Committed() != 0 {
		return
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		s.shadow.thread.SetReg(r, s.thread.Reg(r))
	}
}

// shadowCheck is the watchdog's architectural-transparency probe: advance
// the shadow to the main machine's original-instruction count and compare
// register state. Comparison happens only at sync points where the main
// thread's next PC is in original code — inside a trace the weight
// accounting attributes the in-flight traversal approximately, so exact
// lockstep is only defined at trace boundaries. The optimizer's scratch
// register (and the specialization guard register, when in use) is
// excluded: the paper's optimizer is allowed to clobber it.
func (s *System) shadowCheck(int64) error {
	pc := s.thread.PC()
	if s.cache.Contains(pc) {
		return nil // mid-trace: probe again next tick
	}
	sh := s.shadow
	sh.Run(s.origInstrs)
	if sh.origInstrs != s.origInstrs {
		return fmt.Errorf("shadow stopped at %d original instructions, main at %d",
			sh.origInstrs, s.origInstrs)
	}
	if !s.thread.Halted() && !sh.thread.Halted() && sh.thread.PC() != pc {
		return fmt.Errorf("control diverged after %d instructions: main pc %#x, shadow pc %#x",
			s.origInstrs, pc, sh.thread.PC())
	}
	scratch := isaReg(s.cfg.ScratchReg)
	guard := isaReg(s.cfg.GuardReg)
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if r == scratch || (s.cfg.ValueSpecialize && r == guard) {
			continue
		}
		if s.thread.Reg(r) != sh.thread.Reg(r) {
			return fmt.Errorf("r%d diverged after %d instructions: main %#x, shadow %#x",
				r, s.origInstrs, s.thread.Reg(r), sh.thread.Reg(r))
		}
	}
	return nil
}
