package core

import (
	"reflect"
	"sync"
	"testing"

	"tridentsp/internal/program"
)

// TestConcurrentSystemsShareNothing proves the rule the parallel experiment
// harness relies on: independently constructed Systems share no mutable
// state, so overlapping runs in different goroutines must reproduce their
// serial results exactly. scripts/check.sh runs the suite under -race, where
// this test also flags any hidden package-level state.
func TestConcurrentSystemsShareNothing(t *testing.T) {
	const budget = 200_000
	cases := []struct {
		name string
		prog func() *program.Program
		cfg  Config
	}{
		{"art/self-repair", artProgram, DefaultConfig()},
		{"stride/hw-only", func() *program.Program { return strideWorkload(131072, 64, 4) }, BaselineConfig(HW8x8)},
	}
	serial := make([]Results, len(cases))
	for i, c := range cases {
		serial[i] = NewSystem(c.cfg, c.prog()).Run(budget)
	}

	const replicas = 3
	got := make([][]Results, len(cases))
	var wg sync.WaitGroup
	for i, c := range cases {
		got[i] = make([]Results, replicas)
		for r := 0; r < replicas; r++ {
			wg.Add(1)
			go func(i, r int, prog func() *program.Program, cfg Config) {
				defer wg.Done()
				got[i][r] = NewSystem(cfg, prog()).Run(budget)
			}(i, r, c.prog, c.cfg)
		}
	}
	wg.Wait()

	for i, c := range cases {
		for r := 0; r < replicas; r++ {
			if !reflect.DeepEqual(got[i][r], serial[i]) {
				t.Errorf("%s replica %d diverged from the serial run:\nserial: %+v\nconcur: %+v",
					c.name, r, serial[i], got[i][r])
			}
		}
	}
}
