package core

import (
	"testing"

	"tridentsp/internal/isa"
	"tridentsp/internal/program"
)

// Regression tests for bugs found and fixed during development. Each test
// names the failure mode it guards against.

// TestSupersededTraceDrains guards the retirement bug: after a trace is
// re-optimized, execution looping inside the old version must drain into
// the new one via the re-patched loop branch, or prefetch code never runs.
func TestSupersededTraceDrains(t *testing.T) {
	p := strideWorkload(131072, 64, 4)
	cfg := DefaultConfig()
	cfg.HW = HWNone
	sys := NewSystem(cfg, p)
	res := sys.Run(2_000_000)
	if res.Insertions == 0 {
		t.Skip("no insertion to drain into")
	}
	if res.Mem.PrefetchesIssued == 0 {
		t.Fatal("prefetches never executed: execution stranded in the superseded trace")
	}
	// The thread must be executing a LIVE placement (or original code),
	// never a retired one.
	pc := sys.Thread().PC()
	if sys.cache.Contains(pc) {
		if pl, ok := sys.cache.PlacementAt(pc); ok && !pl.Live {
			t.Fatalf("execution inside retired trace at %#x", pc)
		}
	}
}

// TestSuppressedEventUnfreezesWindow guards the frozen-counter leak: a
// delinquent event suppressed by the trace's optimization flag must reset
// the load's monitoring window, or the load never raises another event and
// repair stalls after a handful of steps.
func TestSuppressedEventUnfreezesWindow(t *testing.T) {
	// swim-like: three concurrent delinquent loads force suppression
	// collisions (one event in flight while others fire).
	b := program.NewBuilder("tri", 0x1000, 0x1000000)
	size := uint64(8 << 20)
	x := b.Alloc(size)
	y := b.Alloc(size)
	z := b.Alloc(size)
	b.Ldi(6, 1<<40)
	b.Label("outer")
	b.Ldi(1, x)
	b.Ldi(2, y)
	b.Ldi(3, z)
	b.Ldi(4, size/64-1)
	b.Label("top")
	b.Ld(10, 1, 0)
	b.Ld(11, 2, 0)
	b.Ld(12, 3, 0)
	for i := 0; i < 12; i++ {
		b.Op(isa.FADD, 13, 13, 10)
	}
	b.OpI(isa.ADDI, 1, 1, 64)
	b.OpI(isa.ADDI, 2, 2, 64)
	b.OpI(isa.ADDI, 3, 3, 64)
	b.OpI(isa.SUBI, 4, 4, 1)
	b.CondBr(isa.BNE, 4, "top")
	b.OpI(isa.SUBI, 6, 6, 1)
	b.CondBr(isa.BNE, 6, "outer")
	b.Halt()
	p := b.MustBuild()

	cfg := DefaultConfig()
	cfg.HW = HWNone
	res := NewSystem(cfg, p).Run(3_000_000)
	// All three loads must keep repairing; the leak capped repairs at ~2
	// per load.
	if res.Repairs < 10 {
		t.Fatalf("only %d repairs: monitoring windows froze", res.Repairs)
	}
}

// TestNoDuplicateTraceForHead guards the double-capture bug: a hot head
// captured twice before its first trace links would form a duplicate trace
// and strand execution in the unoptimized copy.
func TestNoDuplicateTraceForHead(t *testing.T) {
	p := strideWorkload(65536, 64, 4)
	cfg := DefaultConfig()
	cfg.HW = HWNone
	sys := NewSystem(cfg, p)
	sys.Run(1_500_000)
	// Count live base traces per head: each head has at most one live
	// lineage.
	heads := map[uint64]int{}
	for id := 1; ; id++ {
		pl, ok := sys.cache.PlacementByID(id)
		if !ok {
			break
		}
		if pl.Live {
			heads[pl.Trace.StartPC]++
		}
	}
	for head, n := range heads {
		if n > 1 {
			t.Fatalf("head %#x has %d live traces", head, n)
		}
	}
}

// TestStreamBufferFillsDoNotWarmCaches guards the fill-installation bug:
// stream-buffer fills must not act as L2/L3 warmers, or a thrashing
// prefetcher looks beneficial.
func TestStreamBufferFillsDoNotWarmCaches(t *testing.T) {
	// art thrashes the buffers by design; its HW-only run must not get
	// closer than ~30% to the issue-bound IPC it would reach with free
	// L2 warming.
	bm := artProgram()
	base := NewSystem(BaselineConfig(HWNone), artProgram()).Run(1_000_000)
	hw := NewSystem(BaselineConfig(HW8x8), bm).Run(1_000_000)
	if sp := Speedup(hw, base); sp > 1.6 {
		t.Fatalf("thrashing stream buffers gained %.2fx: fills are warming caches", sp)
	}
}

// artProgram builds a 16-stream kernel like workloads.Art without importing
// it (core tests stay below workloads in the package DAG).
func artProgram() *program.Program {
	b := program.NewBuilder("art16", 0x1000, 0x1000000)
	size := uint64(10 << 20)
	w := b.Alloc(size)
	const planes = 16
	plane := size / planes
	b.Ldi(6, 1<<40)
	b.Label("outer")
	b.Ldi(1, w)
	b.Ldi(4, plane/8-8)
	b.Label("top")
	for k := 0; k < planes; k++ {
		b.Ld(10, 1, int64(uint64(k)*plane))
		b.Op(isa.FADD, 13, 13, 10)
	}
	for i := 0; i < 24; i++ {
		b.Op(isa.FMUL, 14, 14, 13)
	}
	b.OpI(isa.ADDI, 1, 1, 8)
	b.OpI(isa.SUBI, 4, 4, 1)
	b.CondBr(isa.BNE, 4, "top")
	b.OpI(isa.SUBI, 6, 6, 1)
	b.CondBr(isa.BNE, 6, "outer")
	b.Halt()
	return b.MustBuild()
}

// TestPatchedHeadAccountsWeightOnce guards double-counting at patched
// heads: the BR patch itself is weight-0 because the trace's first
// instruction carries the head's original weight.
func TestPatchedHeadAccountsWeightOnce(t *testing.T) {
	build := func() *program.Program { return strideFinite(48, 2048) }
	ref := NewSystem(BaselineConfig(HWNone), build()).Run(1 << 62)
	opt := NewSystem(DefaultConfig(), build()).Run(1 << 62)
	if ref.OrigInstrs != opt.OrigInstrs {
		t.Fatalf("patched head mis-accounted: %d vs %d", ref.OrigInstrs, opt.OrigInstrs)
	}
}

// TestTraceReportMentionsPrefetches exercises the diagnostic report.
func TestTraceReportMentionsPrefetches(t *testing.T) {
	p := strideWorkload(131072, 64, 4)
	cfg := DefaultConfig()
	cfg.HW = HWNone
	sys := NewSystem(cfg, p)
	sys.Run(2_000_000)
	rep := sys.TraceReport()
	for _, want := range []string{"trace 1", "prefetch", "orig 0x"} {
		if !containsStr(rep, want) {
			t.Fatalf("report missing %q:\n%.600s", want, rep)
		}
	}
	// A Trident-less system reports that plainly.
	plain := NewSystem(BaselineConfig(HWNone), strideFinite(2, 64))
	plain.Run(1 << 62)
	if !containsStr(plain.TraceReport(), "trident disabled") {
		t.Fatal("non-Trident report wrong")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
