package core

import (
	"testing"

	"tridentsp/internal/chaos"
)

// TestChaosFlushComposesWithFastTables pins fault injection against the
// open-addressed MSHR and victim buffer: the eviction-storm preset (DLT
// flush bursts) and the workload-shift preset (full cache flushes, which
// now reset the in-flight and victim tables in place) must still run to
// completion with faults applied and zero invariant violations.
func TestChaosFlushComposesWithFastTables(t *testing.T) {
	for _, preset := range []chaos.Preset{chaos.PresetEvictionStorm, chaos.PresetWorkloadShift} {
		preset := preset
		t.Run(string(preset), func(t *testing.T) {
			sched, err := chaos.NewSchedule(preset, 11, 1_500_000)
			if err != nil {
				t.Fatal(err)
			}
			res := NewSystem(chaosConfig(sched), artProgram()).Run(400_000)
			if res.Aborted != "" {
				t.Fatalf("aborted: %s", res.Aborted)
			}
			if res.ChaosFaults == 0 {
				t.Fatal("no faults applied: preset did not exercise anything")
			}
			if res.InvariantViolations != 0 {
				t.Fatalf("%d invariant violations, first: %s",
					res.InvariantViolations, res.FirstViolation)
			}
			if res.OrigInstrs < 400_000 {
				t.Fatalf("run stopped early: %d instrs", res.OrigInstrs)
			}
		})
	}
}
