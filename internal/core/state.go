package core

import (
	"errors"
	"fmt"
	"sort"

	"tridentsp/internal/checkpoint"
)

// Checkpoint/restore for the whole machine (DESIGN §12). SaveState walks
// every subsystem's SaveState in a fixed order; RestoreState loads the same
// order into a System freshly built from the identical Config and program.
// Wiring, derived constants, and registered callbacks come from
// construction — only mutable state travels, so a Config mismatch surfaces
// as a structural validation error, never as silent divergence.
//
// The one piece of machine state that cannot be serialized is a pending
// optimization (s.apply), a closure over live structures. Checkpointing
// callers run Quiesce first; the snapshot then lands at a boundary the
// uninterrupted run also passes through, which is what makes a restored run
// bit-identical (engine-class telemetry excepted — fast-path session events
// depend on where batches start, which a restore necessarily changes).

// OrigInstrs reports the committed original-instruction count so far —
// Run's progress cursor, and the coordinate checkpoint windows are cut at.
func (s *System) OrigInstrs() uint64 { return s.origInstrs }

// Quiesce steps the machine until no optimization is pending (bounded by
// maxSteps), so its state is serializable. Returns true when quiescent: the
// pending apply fired (or the machine halted or aborted, which also ends
// the run's need for the closure). The slow steps taken here are
// bit-identical to the ones an uninterrupted run performs at the same
// point, so quiescing does not perturb the run being checkpointed.
func (s *System) Quiesce(maxSteps int) bool {
	for i := 0; i < maxSteps && s.apply != nil && !s.thread.Halted() && s.aborted == ""; i++ {
		s.step()
	}
	return s.apply == nil || s.thread.Halted() || s.aborted != ""
}

// SaveState serializes the machine's full mutable state. It fails when an
// optimization is in flight — call Quiesce first.
func (s *System) SaveState() ([]byte, error) {
	if s.apply != nil && !s.thread.Halted() {
		return nil, errors.New("core: optimization in flight; Quiesce before SaveState")
	}
	e := checkpoint.NewEncoder()
	s.saveState(e)
	return e.Bytes(), nil
}

// RestoreState loads a SaveState blob into this machine, which must have
// been built from the same Config and program image. Errors leave no
// guarantee about partial state — restore into a fresh System.
func (s *System) RestoreState(blob []byte) error {
	d := checkpoint.NewDecoder(blob)
	if err := s.loadState(d); err != nil {
		return err
	}
	return d.Finish()
}

func (s *System) saveState(e *checkpoint.Encoder) {
	e.Mark("core.system")
	s.thread.SaveState(e)
	s.live.SaveState(e)
	s.mem.SaveState(e)
	s.hier.SaveState(e)
	e.Bool(s.sb != nil)
	if s.sb != nil {
		s.sb.SaveState(e)
	}
	e.Bool(s.hwp != nil)
	if s.hwp != nil {
		s.hwp.SaveState(e)
	}
	s.bp.SaveState(e)
	s.cache.SaveState(e)
	e.Bool(s.cfg.Trident)
	if s.cfg.Trident {
		s.prof.SaveState(e)
		s.watch.SaveState(e)
		s.table.SaveState(e)
		e.Bool(s.vpt != nil)
		if s.vpt != nil {
			s.vpt.SaveState(e)
		}
		s.queue.SaveState(e)
		s.helper.SaveState(e)
		e.Bool(s.opt != nil)
		if s.opt != nil {
			s.opt.SaveState(e)
		}
	}

	// Execution-loop state. Placement pointers serialize as indices into
	// the code cache's placement slice.
	e.Mark("core.loop")
	e.Int(s.cache.PlacementIndex(s.curPl))
	e.I64(s.traversalStart)
	e.Bool(s.inTraversal)
	e.I64(s.lastNow)
	e.Len(len(s.patched))
	for _, b := range s.patched {
		e.Bool(b)
	}
	e.I64(s.applyAt)
	e.Bool(s.interfering)
	e.Int(s.cache.PlacementIndex(s.sbPl))
	e.U64(s.sbEntry)
	e.Bool(s.sbHeadPending)

	ids := make([]int, 0, len(s.activity))
	for id := range s.activity {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	e.Len(len(ids))
	for _, id := range ids {
		a := s.activity[id]
		e.Int(id)
		e.U64(a.entries)
		e.U64(a.traversals)
		e.Bool(a.hasLoop)
		e.Bool(a.hasLoopSet)
	}

	e.Bool(s.chaosRun != nil)
	if s.chaosRun != nil {
		s.chaosRun.SaveState(e)
	}
	e.Bool(s.monitor != nil)
	if s.monitor != nil {
		s.monitor.SaveState(e)
	}
	e.Bool(s.shadow != nil)
	if s.shadow != nil {
		s.shadow.saveState(e)
	}
	e.Len(len(s.latFactors))
	for _, f := range s.latFactors {
		e.I64(f)
	}
	e.Len(len(s.assocLimits))
	for _, l := range s.assocLimits {
		e.Int(l)
	}

	e.Str(s.aborted)
	e.U64(s.phaseMarkInstrs)
	e.U64(s.phaseMarkMisses)
	e.F64(s.phaseRate)
	e.Bool(s.phaseRateValid)
	e.U64(s.origInstrs)
	e.U64(s.ffwdInstrs)

	st := &s.stats
	e.U64(st.tracesFormed)
	e.U64(st.tracesBackedOut)
	e.U64(st.tracesSpecialized)
	e.U64(st.phaseClears)
	e.U64(st.missesTotal)
	e.U64(st.missesInTrace)
	e.U64(st.missesCovered)
	e.U64(st.loadsInTrace)
	e.U64(st.loadsTotal)
	e.U64(st.applyErrors)
	e.U64(st.traceTraversal)
	e.U64(st.sentinelChecks)
	e.U64(st.sentinelTrips)

	e.U64(s.sentinelNextAt)
	e.Bool(s.sentinelSnap != nil)
	if s.sentinelSnap != nil {
		e.Blob(s.sentinelSnap)
	}
	e.U64(s.sentinelSnapAt)

	e.Bool(s.tel != nil)
	if s.tel != nil {
		s.tel.SaveState(e)
	}
}

// present validates a subsystem-presence flag against what this System's
// configuration actually built.
func present(d *checkpoint.Decoder, have bool, what string) error {
	want := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if want != have {
		return fmt.Errorf("%w: checkpoint %s %s but this machine %s it — different configuration",
			checkpoint.ErrCorrupt, hasWord(want), what, hasWord(have))
	}
	return nil
}

func hasWord(b bool) string {
	if b {
		return "has"
	}
	return "lacks"
}

func (s *System) loadState(d *checkpoint.Decoder) error {
	d.Expect("core.system")
	if err := s.thread.LoadState(d); err != nil {
		return err
	}
	if err := s.live.LoadState(d); err != nil {
		return err
	}
	if err := s.mem.LoadState(d); err != nil {
		return err
	}
	if err := s.hier.LoadState(d); err != nil {
		return err
	}
	if err := present(d, s.sb != nil, "stream buffers"); err != nil {
		return err
	}
	if s.sb != nil {
		if err := s.sb.LoadState(d); err != nil {
			return err
		}
	}
	if err := present(d, s.hwp != nil, "an arsenal prefetcher"); err != nil {
		return err
	}
	if s.hwp != nil {
		if err := s.hwp.LoadState(d); err != nil {
			return err
		}
	}
	if err := s.bp.LoadState(d); err != nil {
		return err
	}
	if err := s.cache.LoadState(d); err != nil {
		return err
	}
	if err := present(d, s.cfg.Trident, "Trident"); err != nil {
		return err
	}
	if s.cfg.Trident {
		if err := s.prof.LoadState(d); err != nil {
			return err
		}
		if err := s.watch.LoadState(d); err != nil {
			return err
		}
		if err := s.table.LoadState(d); err != nil {
			return err
		}
		if err := present(d, s.vpt != nil, "a value profile table"); err != nil {
			return err
		}
		if s.vpt != nil {
			if err := s.vpt.LoadState(d); err != nil {
				return err
			}
		}
		if err := s.queue.LoadState(d); err != nil {
			return err
		}
		if err := s.helper.LoadState(d); err != nil {
			return err
		}
		if err := present(d, s.opt != nil, "a prefetch optimizer"); err != nil {
			return err
		}
		if s.opt != nil {
			if err := s.opt.LoadState(d); err != nil {
				return err
			}
		}
	}

	d.Expect("core.loop")
	s.curPl = s.cache.PlacementByIndex(d.Int())
	s.traversalStart = d.I64()
	s.inTraversal = d.Bool()
	s.lastNow = d.I64()
	n := d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	if n != len(s.patched) {
		return fmt.Errorf("%w: patch bitmap covers %d words, program has %d",
			checkpoint.ErrCorrupt, n, len(s.patched))
	}
	for i := range s.patched {
		s.patched[i] = d.Bool()
	}
	s.apply = nil
	s.applyAt = d.I64()
	s.interfering = d.Bool()
	s.sbPl = s.cache.PlacementByIndex(d.Int())
	s.sbEntry = d.U64()
	s.sbHeadPending = d.Bool()

	na := d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	s.activity = make(map[int]*traceActivity, na)
	for i := 0; i < na; i++ {
		id := d.Int()
		s.activity[id] = &traceActivity{
			entries:    d.U64(),
			traversals: d.U64(),
			hasLoop:    d.Bool(),
			hasLoopSet: d.Bool(),
		}
	}

	if err := present(d, s.chaosRun != nil, "a chaos schedule"); err != nil {
		return err
	}
	if s.chaosRun != nil {
		if err := s.chaosRun.LoadState(d); err != nil {
			return err
		}
	}
	if err := present(d, s.monitor != nil, "a watchdog monitor"); err != nil {
		return err
	}
	if s.monitor != nil {
		if err := s.monitor.LoadState(d); err != nil {
			return err
		}
	}
	if err := present(d, s.shadow != nil, "a shadow machine"); err != nil {
		return err
	}
	if s.shadow != nil {
		if err := s.shadow.loadState(d); err != nil {
			return err
		}
	}
	s.latFactors = s.latFactors[:0]
	for k := d.Len(); k > 0; k-- {
		s.latFactors = append(s.latFactors, d.I64())
	}
	s.assocLimits = s.assocLimits[:0]
	for k := d.Len(); k > 0; k-- {
		s.assocLimits = append(s.assocLimits, d.Int())
	}

	s.aborted = d.Str()
	s.phaseMarkInstrs = d.U64()
	s.phaseMarkMisses = d.U64()
	s.phaseRate = d.F64()
	s.phaseRateValid = d.Bool()
	s.origInstrs = d.U64()
	s.ffwdInstrs = d.U64()

	st := &s.stats
	st.tracesFormed = d.U64()
	st.tracesBackedOut = d.U64()
	st.tracesSpecialized = d.U64()
	st.phaseClears = d.U64()
	st.missesTotal = d.U64()
	st.missesInTrace = d.U64()
	st.missesCovered = d.U64()
	st.loadsInTrace = d.U64()
	st.loadsTotal = d.U64()
	st.applyErrors = d.U64()
	st.traceTraversal = d.U64()
	st.sentinelChecks = d.U64()
	st.sentinelTrips = d.U64()

	s.sentinelNextAt = d.U64()
	s.sentinelSnap = nil
	if d.Bool() {
		s.sentinelSnap = d.Blob()
	}
	s.sentinelSnapAt = d.U64()

	if err := present(d, s.tel != nil, "telemetry"); err != nil {
		return err
	}
	if s.tel != nil {
		if err := s.tel.LoadState(d); err != nil {
			return err
		}
	}
	return d.Err()
}
