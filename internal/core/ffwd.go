package core

import (
	"fmt"

	"tridentsp/internal/checkpoint"
	"tridentsp/internal/cpu"
	"tridentsp/internal/isa"
	"tridentsp/internal/trident"
)

// Sampled-simulation support (DESIGN §14). A sampled run alternates detailed
// intervals — the ordinary three-tier engine, every statistic recorded — with
// functional fast-forward gaps where only architectural state advances. This
// file owns the core half of that contract: moving the machine out of the
// code cache, running the functional executor over the pristine image, and
// the architectural (region-of-interest) checkpoints that let a sweep skip
// the functional work after the first pass.

// Results returns the run's statistics so far without perturbing machine
// state. The sampling controller snapshots it around each detailed interval;
// the deltas are what extrapolation is built from.
func (s *System) Results() Results { return s.results() }

// FFwdInstrs reports original instructions advanced functionally by
// FastForward (zero in exact runs).
func (s *System) FFwdInstrs() uint64 { return s.ffwdInstrs }

// Aborted reports the Run-abort reason ("" while healthy).
func (s *System) Aborted() string { return s.aborted }

// Progress reports total original-program progress: detailed plus
// fast-forwarded instructions. Sampled runs cut their interval grid in this
// coordinate.
func (s *System) Progress() uint64 { return s.origInstrs + s.ffwdInstrs }

// TierInstrs reports weighted original instructions retired per execution
// tier (reference loop, superblock batch, JIT). The sampling controller
// folds the mix into its phase-detection signal vector.
func (s *System) TierInstrs() (slow, batch, jit uint64) {
	return s.tiers[tierSlow].instrs, s.tiers[tierBatch].instrs, s.tiers[tierJIT].instrs
}

// FastForward advances the machine n original instructions functionally:
// registers, PC, and data memory evolve exactly as detailed execution would
// evolve them (architectural transparency makes the pristine image's results
// identical to the patched image's), but the clock stays frozen and no
// figure statistics accumulate. The final warm instructions (warm ≤ n) run
// with warm-up probes enabled, so caches, stream buffers, the branch
// predictor, and the DLT enter the next detailed interval lived-in.
// Returns how many instructions actually retired (short only when the
// program halts inside the gap).
func (s *System) FastForward(n, warm uint64) uint64 {
	if n == 0 || s.thread.Halted() || s.aborted != "" {
		return 0
	}
	s.exitCodeCache()
	if warm > n {
		warm = n
	}
	insts := s.pristine.Decoded()
	var done uint64
	if pure := n - warm; pure > 0 {
		done += s.thread.ExecFunctional(insts, s.pristine.Base, pure, nil)
	}
	if warm > 0 && !s.thread.Halted() {
		// The warm pseudo-clock ends exactly at the frozen real cycle, so no
		// warm timestamp (stream-buffer recency, reuse shields) lies in the
		// future of the resumed detailed interval.
		start := s.thread.Now() - int64(warm)
		if start < 0 {
			start = 0
		}
		probes := &cpu.FFProbes{Hier: s.hier, BP: s.bp, Now: start}
		if s.table != nil {
			probes.Load = func(pc, addr uint64, l1Miss bool, now int64) {
				s.table.Warm(pc, addr)
			}
		}
		done += s.thread.ExecFunctional(insts, s.pristine.Base, warm, probes)
	}
	s.ffwdInstrs += done
	return done
}

// exitCodeCache prepares the machine for functional execution: if the PC
// sits inside the code cache, it is mapped back to the equivalent
// original-program address, and the trace-execution loop state is cleared so
// the next detailed interval re-resolves from scratch.
func (s *System) exitCodeCache() {
	pc := s.thread.PC()
	if s.cache.Contains(pc) {
		if pl, ok := s.cache.PlacementAt(pc); ok {
			s.thread.SetPC(mapTracePC(pl, pc))
		}
	}
	s.curPl = nil
	s.inTraversal = false
	s.sbPl = nil
	s.sbEntry = 0
	s.sbHeadPending = false
}

// mapTracePC translates an in-trace PC to the original-program PC of the
// next not-yet-executed original instruction: the first non-inserted trace
// instruction at or after the current position. Inserted prefetch code has
// no original counterpart and is skipped (its effects are architecturally
// invisible); if only inserted code remains, the traversal was about to loop
// back, so the trace's head address is the resume point.
func mapTracePC(pl *trident.Placement, pc uint64) uint64 {
	idx := (pc - pl.Start) / isa.WordSize
	for i := idx; i < uint64(len(pl.Trace.Insts)); i++ {
		ti := &pl.Trace.Insts[i]
		if !ti.Inserted && ti.OrigPC != 0 {
			return ti.OrigPC
		}
	}
	return pl.Trace.StartPC
}

// SaveROI serializes the architectural state only — registers, PC, halted,
// data memory — stamped with the run's current total progress. Because
// functional execution is config-independent, the blob is reusable by any
// (config, seed) variant of the same workload: that is the region-of-
// interest cache's whole trick. Unlike SaveState, no quiescing is needed;
// microarchitectural and optimizer state is deliberately not captured.
// Memory is diff-encoded against the program's immutable data image (the
// format mark is "core.roi2"; pre-diff blobs read as cache misses): the
// blob carries only the written working set, and any System built from the
// same workload reconstructs the rest by sharing the image's pages
// copy-on-write.
func (s *System) SaveROI() []byte {
	e := checkpoint.NewEncoder()
	e.Mark("core.roi2")
	s.thread.SaveArchState(e)
	s.mem.SaveStateDiff(e, s.image)
	e.U64(s.Progress())
	return e.Bytes()
}

// RestoreROI replaces the architectural state with a SaveROI blob, leaving
// detailed-run statistics and microarchitectural state untouched (warm-up
// rebuilds the latter, exactly as it does after an in-process fast-forward).
// The machine's progress becomes the blob's stamp: ffwdInstrs absorbs the
// skipped gap, origInstrs keeps this run's own detailed accounting.
func (s *System) RestoreROI(blob []byte) error {
	d := checkpoint.NewDecoder(blob)
	d.Expect("core.roi2")
	if err := s.thread.LoadArchState(d); err != nil {
		return err
	}
	if err := s.mem.LoadStateDiff(d, s.image); err != nil {
		return err
	}
	at := d.U64()
	if err := d.Finish(); err != nil {
		return err
	}
	if at < s.origInstrs {
		return fmt.Errorf("core: ROI checkpoint at %d instructions is behind this run's detailed progress %d", at, s.origInstrs)
	}
	s.ffwdInstrs = at - s.origInstrs
	s.curPl = nil
	s.inTraversal = false
	s.sbPl = nil
	s.sbEntry = 0
	s.sbHeadPending = false
	return nil
}
