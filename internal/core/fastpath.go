package core

import (
	"math"

	"tridentsp/internal/cpu"
)

// This file implements the first level of the simulator's fast path: the
// event horizon. The framework is event-driven — chaos edges, watchdog
// probes, phase-window boundaries, and helper-thread completions all fire at
// known future cycles — yet the reference loop re-checks every one of them
// after every committed instruction. fastForward instead computes the
// nearest cycle at which anything non-CPU can happen and retires whole
// straight-line blocks (cpu.BlockCache) up to that horizon, running the
// event machinery once per batch at exactly the instruction boundary the
// one-step loop would have used. Anything the batch executor cannot model —
// loads, stores, branches, FDIV, trace entries and exits, patched words —
// falls back to the full step().
//
// Equivalence contract (enforced by TestFastPathDifferential): step()
// executes one instruction and then processes whatever became due at the
// post-commit cycle. ExecBlock stops after the first instruction whose
// commit crosses the horizon or the weight budget, so the batch-end
// processing below observes the same cycle, the same origInstrs, and the
// same machine state as the slow path's per-step processing — bit for bit.

// eventHorizon returns the earliest future cycle at which any non-CPU
// machinery can act, given the current cycle. MaxInt64 means "nothing
// scheduled": execution may batch freely until code-driven work (a load, a
// branch, a trace boundary) forces a slow step anyway.
func (s *System) eventHorizon(now int64) int64 {
	hz := int64(math.MaxInt64)
	if s.chaosRun != nil {
		if v := s.chaosRun.NextAt(); v < hz {
			hz = v
		}
	}
	if s.monitor != nil {
		if v := s.monitor.NextAt(); v < hz {
			hz = v
		}
	}
	if s.cfg.Trident {
		if s.apply != nil && s.applyAt < hz {
			hz = s.applyAt
		}
		// The helper completing changes state in three ways: a pending
		// apply fires (capped above), the interference tax toggles off, and
		// a queued event can dispatch. The latter two anchor to BusyUntil.
		bu := s.helper.BusyUntil()
		busy := now < bu
		if (busy || s.interfering || (s.queue.Len() > 0 && s.apply == nil)) && bu < hz {
			hz = bu
		}
	}
	return hz
}

// fastForward retires instructions on the fast path until the next slow-step
// condition: an ineligible instruction, a trace entry/exit, a patched word,
// or the instruction budget. Event boundaries (the horizon) end a batch but
// not the fast path — processing runs and batching resumes.
func (s *System) fastForward(limit uint64) {
	if s.cfg.DisableFastPath {
		return
	}
	t := s.thread
	hz := s.eventHorizon(t.Now())
	for {
		if t.Halted() {
			return
		}
		pc := t.PC()
		var (
			blk     cpu.Block
			ok      bool
			inTrace bool
		)
		if s.cache.Contains(pc) {
			// In-trace batching covers only the interior of the placement
			// already being traversed: entries, loop-backs (pc == Start),
			// and anything outside s.curPl carry tracking side effects that
			// need the slow path.
			pl := s.curPl
			if pl == nil || pc <= pl.Start || pc >= pl.End {
				return
			}
			if blk, ok = s.cache.BlockAt(pc); !ok {
				return
			}
			// A block must not run past this placement's end into an
			// adjacently placed trace (possible only if a trace ends in a
			// straight-line instruction, but cheap to guarantee here).
			if maxLen := int((pl.End - pc) / 8); len(blk.Insts) > maxLen {
				blk.Insts = blk.Insts[:maxLen]
				blk.Weights = blk.Weights[:maxLen]
			}
			inTrace = true
		} else if s.isPatched(pc) {
			return
		} else if blk, ok = s.live.BlockAt(pc); !ok {
			return
		}

		// Weight budget: stop exactly where the slow loop would — at the
		// instruction that reaches the run limit, or (when phase detection
		// is armed) the one that crosses the phase window.
		budget := limit - s.origInstrs
		if s.cfg.Trident && s.cfg.PhaseClearMature {
			elapsed := s.origInstrs - s.phaseMarkInstrs
			if pb := s.cfg.PhaseWindow - elapsed; elapsed < s.cfg.PhaseWindow && pb < budget {
				budget = pb
			}
		}

		_, w := t.ExecBlock(blk, budget, hz)
		now := t.Now()

		// Batch-end processing: the same due-checks step() runs after every
		// instruction, in the same order. Each is a no-op unless its event
		// actually came due at this boundary.
		if s.chaosRun != nil && now >= s.chaosRun.NextAt() {
			for _, ed := range s.chaosRun.Due(now) {
				s.applyChaosEdge(ed)
			}
		}
		s.origInstrs += w
		if !inTrace && s.curPl != nil {
			// First original-code instruction after a trace exit.
			s.curPl = nil
			s.inTraversal = false
		}
		if s.cfg.Trident {
			if s.cfg.PhaseClearMature &&
				s.origInstrs-s.phaseMarkInstrs >= s.cfg.PhaseWindow {
				s.checkPhase()
			}
			s.pump(now)
			busy := s.helper.Busy(now)
			if busy != s.interfering {
				s.interfering = busy
				t.SetInterference(busy)
			}
		}
		s.lastNow = now
		if s.monitor != nil && now >= s.monitor.NextAt() {
			s.monitor.Tick(now)
		}
		if s.origInstrs >= limit {
			return
		}
		hz = s.eventHorizon(now)
	}
}
