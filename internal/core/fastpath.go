package core

import (
	"math"

	"tridentsp/internal/cpu"
	"tridentsp/internal/isa"
	"tridentsp/internal/memsys"
	"tridentsp/internal/telemetry"
	"tridentsp/internal/trident"
)

// This file implements the first level of the simulator's fast path: the
// event horizon. The framework is event-driven — chaos edges, watchdog
// probes, phase-window boundaries, helper-thread completions, and in-flight
// fill arrivals all fire at known future cycles — yet the reference loop
// re-checks every one of them after every committed instruction. fastForward
// instead computes the nearest cycle at which anything non-CPU can happen
// and retires whole superblocks (cpu.BlockCache) up to that horizon, running
// the event machinery once per batch at exactly the instruction boundary the
// one-step loop would have used.
//
// Since the superblock engine, batches carry memory operations and loop
// back-edges too. The core-side monitoring the slow path performs per
// instruction (DLT/VPT updates for in-trace loads, branch profiling in
// original code, traversal timing at trace loop-backs) is mirrored into the
// batch through cpu.SBHooks, each hook a verbatim transliteration of the
// corresponding step() clause. The remaining slow-path set is exactly the
// event-visible instructions: loads the L1-hit probe declines (misses,
// partial hits, MSHR pressure), FDIV, jumps, trace entries and exits,
// patched words, and any instruction whose monitoring raised a helper event
// (the batch stops so the pump dispatches at the same cycle the slow path
// would have).
//
// Equivalence contract (enforced by TestFastPathDifferential): step()
// executes one instruction and then processes whatever became due at the
// post-commit cycle. ExecSuperBlock stops after the first instruction whose
// commit crosses the horizon or the weight budget — pre-stopping hooked
// instructions that might cross, so a hook never observes an instruction
// past the horizon — and the batch-end processing below observes the same
// cycle, the same origInstrs, and the same machine state as the slow path's
// per-step processing — bit for bit.

// eventHorizon returns the earliest future cycle at which any non-CPU
// machinery can act, given the current cycle. MaxInt64 means "nothing
// scheduled": execution may batch freely until code-driven work (a declined
// load, a trace boundary, a patched word) forces a slow step anyway.
func (s *System) eventHorizon(now int64) int64 {
	hz := int64(math.MaxInt64)
	if s.chaosRun != nil {
		if v := s.chaosRun.NextAt(); v < hz {
			hz = v
		}
	}
	if s.monitor != nil {
		if v := s.monitor.NextAt(); v < hz {
			hz = v
		}
	}
	if s.cfg.Trident {
		if s.apply != nil && s.applyAt < hz {
			hz = s.applyAt
		}
		// The helper completing changes state in three ways: a pending
		// apply fires (capped above), the interference tax toggles off, and
		// a queued event can dispatch. The latter two anchor to BusyUntil.
		bu := s.helper.BusyUntil()
		busy := now < bu
		if (busy || s.interfering || (s.queue.Len() > 0 && s.apply == nil)) && bu < hz {
			hz = bu
		}
	}
	// An in-flight fill arriving re-prices later accesses to its line
	// (partial hit residual → plain hit), so batches never run across a
	// fill-ready boundary; this keeps partial-hit timing exact even though
	// the fast probe itself declines every in-flight line.
	if v := s.hier.EarliestFill(now); v < hz {
		hz = v
	}
	return hz
}

// fastForward retires instructions on the fast path until the next slow-step
// condition: an instruction the batch executor cannot prove equivalent, a
// trace entry, a patched word, or the instruction budget. Event boundaries
// (the horizon) end a batch but not the fast path — processing runs and
// batching resumes.
func (s *System) fastForward(limit uint64) {
	if s.cfg.DisableFastPath {
		return
	}
	t := s.thread
	// Engine telemetry (path-dependent by nature, so it lives in the engine
	// ring): one FastEnter when the session first batches an instruction, one
	// FastExit with the reason the session handed control back to step().
	// Zero-batch sessions still count toward the exit-reason histogram — they
	// measure how often the fast path is attempted but declines outright.
	var (
		entered     bool
		entryCycle  int64
		entryInstrs uint64
	)
	exit := telemetry.FPNeedSlow
	hz := s.eventHorizon(t.Now())
loop:
	for {
		if t.Halted() {
			exit = telemetry.FPHalted
			break loop
		}
		pc := t.PC()
		var (
			blk     cpu.Block
			cb      *cpu.CompiledBlock
			ok      bool
			inTrace bool
			hooks   *cpu.SBHooks
		)
		if s.cache.Contains(pc) {
			// In-trace batching covers the placement already being
			// traversed, including launches at its head: the loop-back
			// traversal record is deferred (sbHeadPending) until the batch
			// proves the head actually retired. First entries (curPl still
			// elsewhere) carry entry-tracking side effects and stay slow.
			pl := s.curPl
			if pl == nil || pc < pl.Start || pc >= pl.End {
				exit = telemetry.FPTraceEntry
				break loop
			}
			if pc == pl.Start && !s.inTraversal {
				exit = telemetry.FPTraceEntry
				break loop
			}
			if s.cfg.JIT {
				// Launch-hot path: a resident chain that stays inside the
				// placement needs no block derivation at all.
				if fast := s.cache.CompiledAt(pc); fast != nil &&
					pc+uint64(fast.Len())*isa.WordSize <= pl.End {
					cb, ok = fast, true
				} else {
					blk, cb, ok = s.cache.BlockAtJIT(pc, s.cfg.JITThreshold)
				}
			} else {
				blk, ok = s.cache.BlockAt(pc)
			}
			if !ok {
				exit = telemetry.FPNoBlock
				break loop
			}
			// A block must not run past this placement's end into an
			// adjacently placed trace (possible only if a trace ends in a
			// straight-line instruction, but cheap to guarantee here).
			if maxLen := int((pl.End - pc) / 8); len(blk.Insts) > maxLen {
				blk.Insts = blk.Insts[:maxLen]
				blk.Weights = blk.Weights[:maxLen]
				// The compiled chain covers the untruncated block; the
				// truncated remainder runs on the interpreter.
				cb = nil
			}
			inTrace = true
			hooks = &s.sbTraceHooks
			s.sbPl, s.sbEntry = pl, pc
			s.sbHeadPending = pc == pl.Start
		} else if s.isPatched(pc) {
			exit = telemetry.FPPatched
			break loop
		} else {
			if s.cfg.JIT {
				if cb = s.live.CompiledAt(pc); cb != nil {
					ok = true
				} else {
					blk, cb, ok = s.live.BlockAtJIT(pc, s.cfg.JITThreshold)
				}
			} else {
				blk, ok = s.live.BlockAt(pc)
			}
			if !ok {
				exit = telemetry.FPNoBlock
				break loop
			}
			if s.cfg.Trident {
				hooks = &s.sbOrigHooks
			}
		}

		// Weight budget: stop exactly where the slow loop would — at the
		// instruction that reaches the run limit, or (when phase detection
		// is armed) the one that crosses the phase window.
		budget := limit - s.origInstrs
		if s.cfg.Trident && s.cfg.PhaseClearMature {
			elapsed := s.origInstrs - s.phaseMarkInstrs
			if pb := s.cfg.PhaseWindow - elapsed; elapsed < s.cfg.PhaseWindow && pb < budget {
				budget = pb
			}
		}

		if s.tel != nil && !entered {
			entered = true
			entryCycle = t.Now()
			entryInstrs = s.origInstrs
			s.tel.Emit(telemetry.KindFastEnter, entryCycle, pc, 0, 0, 0)
		}
		// Tier dispatch: a promoted block retires through its compiled
		// closure chain, everything else through the interpreting batch
		// executor. Both are bit-identical, so promotion timing is
		// architecturally invisible.
		var ex cpu.SBExec
		if cb != nil {
			ex = t.ExecCompiled(cb, budget, hz, hooks)
		} else {
			ex = t.ExecSuperBlock(blk, budget, hz, hooks)
		}
		if ex.N == 0 {
			// The first instruction already needs the slow path: nothing
			// committed, nothing to process — including a deferred head
			// record, whose instruction will now retire through step() and
			// be recorded by trackTraversal instead.
			s.sbHeadPending = false
			exit = telemetry.FPFirstSlow
			break loop
		}
		now := t.Now()

		// Batch-end processing: the same due-checks step() runs after every
		// instruction, in the same order. Each is a no-op unless its event
		// actually came due at this boundary.
		if s.chaosRun != nil && now >= s.chaosRun.NextAt() {
			for _, ed := range s.chaosRun.Due(now) {
				s.applyChaosEdge(ed)
			}
		}
		s.origInstrs += ex.Weight
		if s.faultAt != 0 && s.origInstrs >= s.faultAt {
			// Injected fast-path corruption (InjectFastPathFault): perturb
			// one register at a batch boundary, exactly where real decoded-
			// block corruption would surface. One-shot; never serialized, so
			// a sentinel healing replay is clean.
			s.faultAt = 0
			r := isaReg(s.faultReg)
			t.SetReg(r, t.Reg(r)^s.faultMask)
		}
		if inTrace {
			// A batch that launched at the trace head completed the prior
			// traversal with its first instruction (trackTraversal's
			// loop-back arm); folds inside the batch flushed it already.
			s.flushHeadRecord()
		} else if s.curPl != nil {
			// First original-code instruction after a trace exit.
			s.curPl = nil
			s.inTraversal = false
		}
		// Load accounting, deferred from the batch: the slow path counts
		// these per load, but nothing between the loads and this boundary
		// reads them (the phase check below is the first reader).
		s.stats.loadsTotal += uint64(ex.Loads)
		s.stats.missesTotal += uint64(ex.WouldMiss)
		// Tier residency (engine-class): attribute the batch's weight and
		// clock advance to whichever executor retired it. s.lastNow still
		// holds the pre-batch cycle here.
		tier := tierBatch
		if cb != nil {
			tier = tierJIT
		}
		s.tiers[tier].instrs += ex.Weight
		if d := now - s.lastNow; d > 0 {
			s.tiers[tier].cycles += uint64(d)
		}
		if s.cfg.Trident {
			if s.cfg.PhaseClearMature &&
				s.origInstrs-s.phaseMarkInstrs >= s.cfg.PhaseWindow {
				s.checkPhase(now)
			}
			s.pump(now)
			busy := s.helper.Busy(now)
			if busy != s.interfering {
				s.interfering = busy
				t.SetInterference(busy)
			}
		}
		s.lastNow = now
		if s.monitor != nil && now >= s.monitor.NextAt() {
			s.monitor.Tick(now)
		}
		if ex.NeedSlow || s.origInstrs >= limit {
			if s.origInstrs >= limit {
				exit = telemetry.FPLimit
			}
			break loop
		}
		hz = s.eventHorizon(now)
	}
	if s.tel != nil {
		s.fpReasons[exit].Inc()
		if entered {
			s.tel.Emit(telemetry.KindFastExit, t.Now(), t.PC(), uint64(entryCycle),
				int64(exit), int64(s.origInstrs-entryInstrs))
		}
	}
}

// initSBHooks binds the batch-observation hooks once at construction (the
// method values allocate).
func (s *System) initSBHooks() {
	s.sbTraceHooks = cpu.SBHooks{
		Load:     s.sbTraceLoad,
		LoopBack: s.sbLoopBack,
	}
	s.sbOrigHooks = cpu.SBHooks{
		Branch: s.sbOrigBranch,
	}
}

// recordTraversal is trackTraversal's loop-back arm, applied at cycle at:
// the traversal that just closed ran from traversalStart to at.
func (s *System) recordTraversal(at int64) {
	pl := s.sbPl
	if we, ok := s.watch.ByID(pl.TraceID); ok {
		we.RecordTraversal(at - s.traversalStart)
	}
	s.stats.traceTraversal++
	s.traversalStart = at
	if s.cfg.Backout {
		if a := s.activity[pl.TraceID]; a != nil {
			a.traversals++
		}
	}
}

// flushHeadRecord issues the traversal record deferred at a head launch.
// The slow path records when the head instruction commits, using the cycle
// of the instruction *before* it (s.lastNow); at flush time s.lastNow still
// holds exactly that pre-batch value.
func (s *System) flushHeadRecord() {
	if !s.sbHeadPending {
		return
	}
	s.sbHeadPending = false
	s.recordTraversal(s.lastNow)
}

// sbLoopBack fires when a batched trace fold is about to re-execute the
// block entry. When the entry is the trace head this is trackTraversal's
// loop-back: the pending head record (if the batch launched at the head)
// flushes first, then the traversal that the branch just closed is recorded
// at the branch's post-commit cycle — the same value the slow path would
// record one step later via lastNow.
func (s *System) sbLoopBack(now int64) {
	if s.sbEntry != s.sbPl.Start {
		return
	}
	s.flushHeadRecord()
	s.recordTraversal(now)
}

// sbTraceLoad is monitorLoad, transliterated for a batched in-trace load.
// It must stop the batch exactly when a helper event was enqueued: the slow
// path's pump would dispatch it at this very cycle, so the batch has to end
// for the batch-end pump to run at the same point. loadsTotal/missesTotal
// are deliberately not counted here — the batch aggregates them (SBExec) and
// the boundary processing adds them before any reader runs.
func (s *System) sbTraceLoad(pc, addr, value uint64, res memsys.Result, now int64) bool {
	pl := s.sbPl
	idx := (pc - pl.Start) / isa.WordSize
	ti := &pl.Trace.Insts[idx]
	if ti.Inserted || ti.OrigPC == 0 {
		return false
	}
	origPC, headPC := ti.OrigPC, pl.Trace.StartPC

	s.stats.loadsInTrace++
	stop := false
	if s.vpt != nil && s.vpt.Update(origPC, value) {
		ev := trident.Event{Kind: trident.EventInvariantLoad, Raised: now, LoadPC: origPC}
		ev.Hot.StartPC = headPC
		if s.queue.Push(ev) {
			stop = true
		}
	}
	if wouldMiss(res) {
		s.stats.missesInTrace++
		if s.opt != nil && s.opt.Covered(headPC, origPC) {
			s.stats.missesCovered++
		}
	}
	// A fast-path load is never an L1 miss, so the DLT sample is always
	// (miss=false, lat=0) — identical to what the slow path would feed it
	// for the same access. The window boundary can still cross the
	// delinquency threshold on earlier misses, so the event path stays.
	if !s.table.UpdateAt(origPC, addr, false, 0, now) {
		return stop
	}
	if s.opt == nil {
		s.table.ClearCounters(origPC)
		return stop
	}
	we, ok := s.watch.ByStart(headPC)
	if !ok || we.OptFlag {
		s.table.ClearCounters(origPC)
		return stop
	}
	ev := trident.Event{
		Kind:    trident.EventDelinquentLoad,
		Raised:  now,
		LoadPC:  origPC,
		TraceID: we.TraceID,
	}
	ev.Hot.StartPC = headPC
	if s.queue.Push(ev) {
		we.OptFlag = true
		return true
	}
	s.table.ClearCounters(origPC)
	return stop
}

// sbOrigBranch is the branch-profiling clause of step(), transliterated for
// a batched original-code conditional branch. The batch launch guarantees
// pc is outside the code cache and outside any placement, which is the slow
// path's profiling precondition. The batch stops when a hot-trace event was
// enqueued, for the same pump-timing reason as sbTraceLoad.
func (s *System) sbOrigBranch(pc uint64, in *isa.Inst, taken bool, now int64) bool {
	target := isa.BranchTarget(pc, *in)
	if hot, fired := s.prof.OnCondBranch(pc, target, taken); fired {
		return s.enqueueHot(hot, now)
	}
	return false
}
