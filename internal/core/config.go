// Package core wires every substrate into the simulated machine the paper
// evaluates: the SMT core, the memory hierarchy with hardware stream
// buffers, the Trident monitoring hardware and helper-thread scheduler, the
// delinquent load table, and the self-repairing prefetch optimizer. It owns
// the simulation loop, the honest original-instruction IPC accounting, and
// the statistics every figure of the paper is regenerated from.
package core

import (
	"fmt"

	"tridentsp/internal/chaos"
	"tridentsp/internal/cpu"
	"tridentsp/internal/dlt"
	"tridentsp/internal/hwpref"
	"tridentsp/internal/isa"
	"tridentsp/internal/memsys"
	"tridentsp/internal/prefetch"
	"tridentsp/internal/streambuf"
	"tridentsp/internal/telemetry"
	"tridentsp/internal/trace"
	"tridentsp/internal/trident"
)

// HWPrefetch selects the hardware stream-buffer configuration (Figure 2).
type HWPrefetch uint8

// Hardware prefetcher configurations. HWNone/HW4x4/HW8x8 select the
// paper's stream-buffer machine; the rest select internal/hwpref arsenal
// backends (DESIGN §16) — four static predictors and the online per-phase
// selector that probes all of them and exploits the epoch winner.
const (
	HWNone HWPrefetch = iota
	HW4x4
	HW8x8
	HWNextLine
	HWStride
	HWBestOffset
	HWGHB
	HWSelector
)

// String names the configuration.
func (h HWPrefetch) String() string {
	switch h {
	case HW4x4:
		return "hw-4x4"
	case HW8x8:
		return "hw-8x8"
	case HWNextLine:
		return "hw-next-line"
	case HWStride:
		return "hw-stride"
	case HWBestOffset:
		return "hw-best-offset"
	case HWGHB:
		return "hw-ghb"
	case HWSelector:
		return "hw-selector"
	}
	return "hw-none"
}

// Arsenal reports whether the configuration selects an internal/hwpref
// backend rather than the stream buffers.
func (h HWPrefetch) Arsenal() bool { return h >= HWNextLine }

// SWMode selects the software prefetching scheme (Figure 5).
type SWMode uint8

// Software prefetching modes.
const (
	SWOff SWMode = iota
	SWBasic
	SWWholeObject
	SWSelfRepair
)

// String names the mode.
func (m SWMode) String() string {
	switch m {
	case SWBasic:
		return "sw-basic"
	case SWWholeObject:
		return "sw-whole-object"
	case SWSelfRepair:
		return "sw-self-repair"
	}
	return "sw-off"
}

// Config describes one simulated machine.
type Config struct {
	CPU cpu.Config
	Mem memsys.Config

	// HW selects the baseline hardware stream buffers or an arsenal
	// backend (HWPrefetch.Arsenal).
	HW HWPrefetch
	// HWDegree is the arsenal backends' prefetch degree (lines proposed
	// per trigger); ignored by the stream-buffer configurations.
	HWDegree int
	// SelectorProbe is the HWSelector probe-epoch length in committed
	// loads; SelectorExploit scales the exploit epoch (probe × factor).
	// Both ignored unless HW is HWSelector.
	SelectorProbe   uint64
	SelectorExploit uint64
	// SW selects dynamic software prefetching; SWOff disables Trident's
	// prefetch optimizer (trace formation still runs if Trident is on).
	SW SWMode

	// Trident enables the dynamic optimization framework (trace formation
	// and the monitoring hardware). Without it the machine is the plain
	// baseline of Figure 2.
	Trident bool
	// LinkTraces, when false, runs the full optimizer but never patches
	// the original binary — the §5.1 overhead experiment.
	LinkTraces bool

	DLT           dlt.Config
	Profiler      trident.ProfilerConfig
	WatchCapacity int
	Form          trace.FormConfig
	Cost          trident.CostModel
	EventQueueCap int

	// PFLineSize etc. for the optimizer are derived from Mem; ScratchReg
	// is the register reserved for inserted dereference code.
	ScratchReg uint8
	// MaxDistanceCap bounds prefetch distances.
	MaxDistanceCap int64
	// DerefPointers enables §3.4.3 pointer dereference prefetching.
	DerefPointers bool
	// InitFromEstimate starts self-repair at the equation-2 estimate
	// instead of distance 1 (the paper's "no gain" variant, §3.5.1).
	InitFromEstimate bool

	// Backout unlinks loop traces whose executions rarely complete a
	// traversal (the captured path was unrepresentative); Trident's watch
	// table exists partly "to identify and back out of hot traces that
	// are under-performing" (§3.1).
	Backout bool
	// BackoutMinEntries is how many trace entries to observe first.
	BackoutMinEntries uint64
	// BackoutRatio is the minimum completed-traversals/entries ratio a
	// loop trace must sustain.
	BackoutRatio float64

	// ValueSpecialize enables dynamic value specialization of hot traces
	// (the prior Trident work's optimization, PACT 2005, which this
	// paper's framework inherits): quasi-invariant loads found by a value
	// profile table get a guard + constant substitution so the classical
	// passes can fold downstream computation.
	ValueSpecialize bool
	// VPT sizes the value profile table.
	VPT trident.VPTConfig
	// GuardReg is the second scratch register specialization guards use.
	GuardReg uint8

	// PhaseClearMature periodically clears the DLT's mature flags when
	// the miss rate shifts — the paper's suggested future work for
	// adapting to working-set and phase changes (§3.5.2).
	PhaseClearMature bool
	// PhaseWindow is the instruction window for phase detection.
	PhaseWindow uint64
	// PhaseDelta is the relative miss-rate change that signals a phase.
	PhaseDelta float64

	// Chaos optionally attaches a deterministic fault-injection schedule
	// (see internal/chaos). Schedules are immutable and shareable: every
	// System built from this Config replays the same faults at the same
	// cycles. nil means no faults and zero per-step overhead.
	Chaos *chaos.Schedule
	// ChaosMonitorEvery is the invariant watchdog's probe period in
	// cycles. When positive and Chaos is set, a chaos.Monitor checks the
	// DESIGN §6 invariants (controller distance bounds, repair budget,
	// DLT consistency, Figure-6 category sums) every so many cycles and
	// records violations in Results.
	ChaosMonitorEvery int64
	// ChaosShadow additionally runs an unoptimized shadow machine in
	// lockstep and compares architectural register state at every
	// watchdog probe that lands in original code — the continuous
	// transparency check. Roughly doubles simulation cost; only honored
	// when the watchdog is attached.
	ChaosShadow bool

	// LivelockWindow aborts a run when no original instruction commits
	// for this many cycles (e.g. a self-loop left by a bad patch),
	// reporting the reason in Results.Aborted instead of spinning to the
	// cycle limit. 0 disables detection.
	LivelockWindow int64

	// Telemetry, when non-nil, attaches a structured event tracer and
	// metrics registry to the machine (internal/telemetry, DESIGN §11):
	// every subsystem's decisions are recorded as typed ring-buffered
	// events, reachable through System.Telemetry(). nil (the default)
	// costs one nil check at each emission site.
	Telemetry *telemetry.Options

	// DisableFastPath forces the reference one-step-at-a-time simulation
	// loop instead of the event-horizon/block-batched engine (DESIGN §9).
	// The two paths are bit-identical by construction — this knob exists so
	// the differential tests (and -slowpath on the CLIs) can prove it.
	// Disabling the fast path also disables the JIT tier (it sits above the
	// batch engine).
	DisableFastPath bool

	// JIT enables the third execution tier (DESIGN §13): superblocks whose
	// launch count crosses JITThreshold are compiled once per block-cache
	// generation into chains of specialized Go closures and retired through
	// cpu.ExecCompiled instead of the interpreting batch executor. The tier
	// is architecturally invisible — bit-identical to the batch engine and
	// the reference loop — and is quarantined together with the fast path
	// on sentinel divergence.
	JIT bool
	// JITThreshold is how many interpreted launches a block endures before
	// promotion; 0 compiles on first use (the promotion-boundary smoke
	// configuration).
	JITThreshold uint32

	// SentinelEvery arms the online divergence sentinel (sentinel.go,
	// DESIGN §12): every so many original instructions a window of
	// SentinelWindow instructions is replayed through the reference
	// one-step loop and the architectural state cross-checked. On
	// divergence the machine rewinds to the window start, quarantines its
	// decoded blocks, and demotes itself to the reference loop for the
	// rest of the run. 0 (the default) disables the sentinel; it is also
	// inert when DisableFastPath already selects the reference loop.
	SentinelEvery uint64
	// SentinelWindow is the sentinel's replay window length in original
	// instructions. Must be positive and at most SentinelEvery when the
	// sentinel is armed.
	SentinelWindow uint64
}

// DefaultConfig is the paper's evaluated machine: Table 1 core and memory,
// 8x8 stream buffers, Trident with self-repairing prefetching.
func DefaultConfig() Config {
	return Config{
		CPU:             cpu.DefaultConfig(),
		Mem:             memsys.DefaultConfig(),
		HW:              HW8x8,
		HWDegree:        4,
		SelectorProbe:   2000,
		SelectorExploit: 16,
		SW:              SWSelfRepair,
		Trident:         true,
		LinkTraces:      true,
		DLT:             dlt.DefaultConfig(),
		Profiler:        trident.DefaultProfilerConfig(),
		WatchCapacity:   256,
		Form:            trace.DefaultFormConfig(),
		Cost:            trident.DefaultCostModel(),
		EventQueueCap:   32,
		ScratchReg:      30,
		MaxDistanceCap:  64,
		DerefPointers:   true,

		VPT:      trident.DefaultVPTConfig(),
		GuardReg: 29,

		BackoutMinEntries: 512,
		BackoutRatio:      0.25,
		PhaseWindow:       500_000,
		PhaseDelta:        0.5,

		ChaosMonitorEvery: 25_000,
		LivelockWindow:    1_000_000,

		JIT:          true,
		JITThreshold: 8,
	}
}

// BaselineConfig is Figure 2's machine: hardware prefetching only, no
// Trident.
func BaselineConfig(hw HWPrefetch) Config {
	c := DefaultConfig()
	c.HW = hw
	c.SW = SWOff
	c.Trident = false
	return c
}

// prefetchConfig derives the optimizer configuration.
func (c Config) prefetchConfig() prefetch.Config {
	mode := prefetch.ModeSelfRepair
	switch c.SW {
	case SWBasic:
		mode = prefetch.ModeBasic
	case SWWholeObject:
		mode = prefetch.ModeWholeObject
	}
	return prefetch.Config{
		Mode:             mode,
		LineSize:         int64(c.Mem.LineSize),
		ScratchReg:       isaReg(c.ScratchReg),
		MemLatency:       c.Mem.MemLatency,
		L1Latency:        c.Mem.L1.Latency,
		MaxDistanceCap:   c.MaxDistanceCap,
		DerefPointers:    c.DerefPointers,
		InitFromEstimate: c.InitFromEstimate,
	}
}

// Validate rejects configurations that would silently misbehave, with
// descriptive errors. NewSystem calls it and panics on failure (matching
// the substrate constructors); CLIs call it first to report friendly
// errors instead.
func (c Config) Validate() error {
	if c.CPU.IssueWidth < 1 {
		return fmt.Errorf("core: CPU.IssueWidth must be at least 1, got %d", c.CPU.IssueWidth)
	}
	if c.Mem.LineSize < 1 || c.Mem.LineSize&(c.Mem.LineSize-1) != 0 {
		return fmt.Errorf("core: Mem.LineSize must be a positive power of two, got %d", c.Mem.LineSize)
	}
	if c.Mem.MemLatency < 1 {
		return fmt.Errorf("core: Mem.MemLatency must be positive, got %d", c.Mem.MemLatency)
	}
	if c.Mem.BusOccupancy < 1 {
		return fmt.Errorf("core: Mem.BusOccupancy must be positive, got %d", c.Mem.BusOccupancy)
	}
	if c.Mem.MaxInFlight < 1 {
		return fmt.Errorf("core: Mem.MaxInFlight must be positive, got %d", c.Mem.MaxInFlight)
	}
	if c.ScratchReg >= uint8(isa.NumRegs) {
		return fmt.Errorf("core: ScratchReg %d outside register file (0..%d)", c.ScratchReg, isa.NumRegs-1)
	}
	if c.HW > HWSelector {
		return fmt.Errorf("core: unknown HW prefetch configuration %d", c.HW)
	}
	if c.HW.Arsenal() && c.HWDegree < 1 {
		return fmt.Errorf("core: HWDegree must be at least 1 with an arsenal prefetcher, got %d", c.HWDegree)
	}
	if c.HW == HWSelector && (c.SelectorProbe < 1 || c.SelectorExploit < 1) {
		return fmt.Errorf("core: SelectorProbe and SelectorExploit must be positive with hw-selector, got %d/%d",
			c.SelectorProbe, c.SelectorExploit)
	}
	if c.Trident {
		if c.WatchCapacity < 1 {
			return fmt.Errorf("core: WatchCapacity must be positive with Trident, got %d", c.WatchCapacity)
		}
		if c.EventQueueCap < 1 {
			return fmt.Errorf("core: EventQueueCap must be positive with Trident, got %d", c.EventQueueCap)
		}
		if c.DLT.WindowSize == 0 {
			return fmt.Errorf("core: DLT.WindowSize must be positive with Trident")
		}
		if c.DLT.Entries < 1 || c.DLT.Assoc < 1 {
			return fmt.Errorf("core: DLT needs positive Entries and Assoc, got %d/%d", c.DLT.Entries, c.DLT.Assoc)
		}
		if c.SW != SWOff && c.MaxDistanceCap < 1 {
			return fmt.Errorf("core: MaxDistanceCap must be at least 1 with software prefetching, got %d", c.MaxDistanceCap)
		}
	}
	if c.Backout {
		if c.BackoutMinEntries == 0 {
			return fmt.Errorf("core: BackoutMinEntries must be positive with Backout enabled")
		}
		if c.BackoutRatio < 0 || c.BackoutRatio > 1 {
			return fmt.Errorf("core: BackoutRatio must be in [0,1], got %g", c.BackoutRatio)
		}
	}
	if c.ValueSpecialize && c.GuardReg >= uint8(isa.NumRegs) {
		return fmt.Errorf("core: GuardReg %d outside register file (0..%d)", c.GuardReg, isa.NumRegs-1)
	}
	if c.PhaseClearMature {
		if c.PhaseWindow == 0 {
			return fmt.Errorf("core: PhaseWindow must be positive with PhaseClearMature")
		}
		if c.PhaseDelta <= 0 {
			return fmt.Errorf("core: PhaseDelta must be positive with PhaseClearMature, got %g", c.PhaseDelta)
		}
	}
	if c.LivelockWindow < 0 {
		return fmt.Errorf("core: LivelockWindow must be non-negative, got %d", c.LivelockWindow)
	}
	if c.ChaosMonitorEvery < 0 {
		return fmt.Errorf("core: ChaosMonitorEvery must be non-negative, got %d", c.ChaosMonitorEvery)
	}
	if c.Chaos != nil {
		if err := c.Chaos.Validate(); err != nil {
			return fmt.Errorf("core: invalid chaos schedule: %w", err)
		}
	}
	if c.Telemetry != nil && c.Telemetry.RingCap < 0 {
		return fmt.Errorf("core: Telemetry.RingCap must be non-negative, got %d", c.Telemetry.RingCap)
	}
	if c.SentinelEvery > 0 {
		if c.SentinelWindow == 0 {
			return fmt.Errorf("core: SentinelWindow must be positive when the sentinel is armed")
		}
		if c.SentinelWindow > c.SentinelEvery {
			return fmt.Errorf("core: SentinelWindow %d exceeds SentinelEvery %d",
				c.SentinelWindow, c.SentinelEvery)
		}
	}
	return nil
}

// streambufConfig derives the stream-buffer configuration.
func (c Config) streambufConfig() (streambuf.Config, bool) {
	switch c.HW {
	case HW4x4:
		sc := streambuf.Config4x4()
		sc.LineSize = c.Mem.LineSize
		return sc, true
	case HW8x8:
		sc := streambuf.DefaultConfig()
		sc.LineSize = c.Mem.LineSize
		return sc, true
	}
	return streambuf.Config{}, false
}

// buildArsenal constructs the hwpref selector for an arsenal configuration
// (nil otherwise). Static backends are single-backend selectors — the same
// engine, buffer, and checkpoint shape, with the epoch machinery inert.
func (c Config) buildArsenal(port hwpref.FillPort) *hwpref.Selector {
	if !c.HW.Arsenal() {
		return nil
	}
	pc := hwpref.DefaultConfig()
	pc.LineSize = c.Mem.LineSize
	pc.Degree = c.HWDegree
	sc := hwpref.SelectorConfig{ProbeLoads: c.SelectorProbe, ExploitFactor: c.SelectorExploit}
	switch c.HW {
	case HWNextLine:
		return hwpref.New(pc, sc, port, hwpref.NewNextLine(pc))
	case HWStride:
		return hwpref.New(pc, sc, port, hwpref.NewStride(pc))
	case HWBestOffset:
		return hwpref.New(pc, sc, port, hwpref.NewBestOffset(pc))
	case HWGHB:
		return hwpref.New(pc, sc, port, hwpref.NewGHB(pc))
	}
	return hwpref.New(pc, sc, port, hwpref.Arsenal(pc)...)
}
