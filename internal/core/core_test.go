package core

import (
	"testing"

	"tridentsp/internal/isa"
	"tridentsp/internal/program"
)

// strideWorkload builds an outer-repeated strided-sum loop over a large
// array: the canonical delinquent stride load.
//
//	outer: ldi r1,arr ; ldi r4,n
//	top:   ld r2,0(r1) ; add r3,r3,r2 ; <pad ALU> ; addi r1,r1,stride ;
//	       subi r4,r4,1 ; bne r4,top
//	       subi r6,r6,1 ; bne r6,outer ; halt
func strideWorkload(n int, stride int64, pad int) *program.Program {
	b := program.NewBuilder("stride-sum", 0x1000, 0x1000000)
	arr := b.Alloc(uint64(n) * uint64(stride))
	b.Ldi(6, 1<<40) // effectively endless outer loop; Run's limit stops it
	b.Label("outer")
	b.Ldi(1, arr)
	b.Ldi(4, uint64(n))
	b.Label("top")
	b.Ld(2, 1, 0)
	b.Op(isa.ADD, 3, 3, 2)
	for i := 0; i < pad; i++ {
		b.OpI(isa.ADDI, 5, 5, 1)
	}
	b.OpI(isa.ADDI, 1, 1, stride)
	b.OpI(isa.SUBI, 4, 4, 1)
	b.CondBr(isa.BNE, 4, "top")
	b.OpI(isa.SUBI, 6, 6, 1)
	b.CondBr(isa.BNE, 6, "outer")
	b.Halt()
	p := b.MustBuild()
	for i := 0; i < n; i++ {
		p.Data[arr+uint64(int64(i)*stride)] = uint64(i + 1)
	}
	return p
}

// pointerWorkload builds a pointer chase over arena-allocated nodes (so the
// hardware sees stride-predictable pointer values, the paper's key case).
func pointerWorkload(nodes int, nodeSize int64) *program.Program {
	b := program.NewBuilder("chase", 0x1000, 0x1000000)
	arena := b.Alloc(uint64(nodes) * uint64(nodeSize))
	// node[i].next = &node[i+1]; last points back to first.
	for i := 0; i < nodes; i++ {
		next := arena + uint64((int64(i)+1)*nodeSize)
		if i == nodes-1 {
			next = arena
		}
		b.SetWord(arena+uint64(int64(i)*nodeSize), next)
		b.SetWord(arena+uint64(int64(i)*nodeSize)+8, uint64(i))
	}
	b.Ldi(6, 1<<40)
	b.Label("outer")
	b.Ldi(1, arena)
	b.Ldi(4, uint64(nodes))
	b.Label("top")
	b.Ld(2, 1, 8) // payload
	b.Op(isa.ADD, 3, 3, 2)
	b.Ld(1, 1, 0) // p = p->next
	b.OpI(isa.SUBI, 4, 4, 1)
	b.CondBr(isa.BNE, 4, "top")
	b.OpI(isa.SUBI, 6, 6, 1)
	b.CondBr(isa.BNE, 6, "outer")
	b.Halt()
	return b.MustBuild()
}

func TestBaselineRunsToLimit(t *testing.T) {
	p := strideWorkload(4096, 64, 2)
	sys := NewSystem(BaselineConfig(HWNone), p)
	res := sys.Run(200_000)
	if res.OrigInstrs < 200_000 {
		t.Fatalf("orig instrs = %d", res.OrigInstrs)
	}
	if res.Cycles <= 0 || res.IPC() <= 0 {
		t.Fatalf("degenerate results: %+v", res)
	}
	if res.TracesFormed != 0 || res.Repairs != 0 {
		t.Fatal("baseline ran Trident")
	}
}

func TestHWPrefetchingSpeedsUpStrideLoop(t *testing.T) {
	p := strideWorkload(16384, 64, 2) // 1 MB array: misses to L3/memory
	none := NewSystem(BaselineConfig(HWNone), p).Run(400_000)
	hw := NewSystem(BaselineConfig(HW8x8), p).Run(400_000)
	sp := Speedup(hw, none)
	if sp < 1.2 {
		t.Fatalf("8x8 stream buffers speedup = %.3f, want > 1.2", sp)
	}
}

func TestTraceFormationAndLinking(t *testing.T) {
	p := strideWorkload(4096, 64, 2)
	cfg := DefaultConfig()
	cfg.HW = HWNone
	sys := NewSystem(cfg, p)
	res := sys.Run(300_000)
	if res.TracesFormed == 0 {
		t.Fatal("no hot traces formed")
	}
	if res.LiveTraces == 0 {
		t.Fatal("no live traces")
	}
	if res.CodeCacheBytes == 0 {
		t.Fatal("code cache empty")
	}
}

func TestSelfRepairingPrefetchSpeedsUpStrideLoop(t *testing.T) {
	// ~1.5MB working set, 10-instruction body. The self-repairing
	// prefetcher must clearly beat the no-Trident machine (both without
	// hardware prefetching, isolating the software effect).
	p := strideWorkload(131072, 64, 4) // 8 MB: beyond L3, steady-state memory misses
	base := NewSystem(BaselineConfig(HWNone), p).Run(3_000_000)
	cfg := DefaultConfig()
	cfg.HW = HWNone
	opt := NewSystem(cfg, p).Run(3_000_000)
	sp := Speedup(opt, base)
	if sp < 1.3 {
		t.Fatalf("self-repair speedup = %.3f (base IPC %.4f, opt IPC %.4f), want > 1.3",
			sp, base.IPC(), opt.IPC())
	}
	if opt.Insertions == 0 {
		t.Fatal("no prefetch insertions happened")
	}
	if opt.Repairs == 0 {
		t.Fatal("no repairs happened")
	}
	if opt.Mem.PrefetchesIssued == 0 {
		t.Fatal("no software prefetches executed")
	}
}

func TestSelfRepairingPrefetchSpeedsUpPointerChase(t *testing.T) {
	// Arena-allocated chase: stride-predictable pointers, invisible to a
	// static analyzer but caught by the DLT stride predictor.
	p := pointerWorkload(65536, 192) // 12.5 MB of nodes: beyond L3
	base := NewSystem(BaselineConfig(HWNone), p).Run(2_000_000)
	cfg := DefaultConfig()
	cfg.HW = HWNone
	opt := NewSystem(cfg, p).Run(2_000_000)
	sp := Speedup(opt, base)
	if sp < 1.2 {
		t.Fatalf("pointer-chase speedup = %.3f, want > 1.2", sp)
	}
}

func TestArchitecturalTransparency(t *testing.T) {
	// The load-bearing invariant: Trident with self-repairing prefetching
	// must not change the program's architectural results. Both runs halt
	// naturally (finite outer loop) and must agree on the computed sum.
	build := func() *program.Program {
		b := program.NewBuilder("sum", 0x1000, 0x1000000)
		arr := b.Alloc(2048 * 64)
		b.Ldi(6, 40) // finite outer loop
		b.Label("outer")
		b.Ldi(1, arr)
		b.Ldi(4, 2048)
		b.Label("top")
		b.Ld(2, 1, 0)
		b.Op(isa.ADD, 3, 3, 2)
		b.OpI(isa.ADDI, 1, 1, 64)
		b.OpI(isa.SUBI, 4, 4, 1)
		b.CondBr(isa.BNE, 4, "top")
		b.St(3, 1, 0) // store running sum past the array
		b.OpI(isa.SUBI, 6, 6, 1)
		b.CondBr(isa.BNE, 6, "outer")
		b.Halt()
		p := b.MustBuild()
		for i := 0; i < 2048; i++ {
			p.Data[arr+uint64(i*64)] = uint64(i)*2718281 + 7
		}
		return p
	}

	run := func(cfg Config) (uint64, []program.WordValue) {
		p := build()
		sys := NewSystem(cfg, p)
		sys.Run(1 << 62) // run to halt
		if !sys.Thread().Halted() {
			t.Fatal("program did not halt")
		}
		return sys.Thread().Reg(3), sys.mem.Snapshot()
	}

	wantSum, wantMem := run(BaselineConfig(HWNone))
	for _, cfg := range []Config{
		BaselineConfig(HW8x8),
		func() Config { c := DefaultConfig(); c.SW = SWBasic; return c }(),
		func() Config { c := DefaultConfig(); c.SW = SWWholeObject; return c }(),
		DefaultConfig(),
		func() Config { c := DefaultConfig(); c.HW = HWNone; return c }(),
	} {
		sum, mem := run(cfg)
		if sum != wantSum {
			t.Fatalf("config %s/%s: sum %d != baseline %d", cfg.HW, cfg.SW, sum, wantSum)
		}
		if len(mem) != len(wantMem) {
			t.Fatalf("config %s/%s: memory footprint differs", cfg.HW, cfg.SW)
		}
		for i := range mem {
			if mem[i] != wantMem[i] {
				t.Fatalf("config %s/%s: memory differs at %#x", cfg.HW, cfg.SW, mem[i].Addr)
			}
		}
	}
}

func TestOrigInstrsAccountingMatchesUnoptimizedRun(t *testing.T) {
	// Running to natural halt, the original-instruction count must be
	// identical with and without Trident (weights conserve the original
	// program's instruction stream).
	build := func() *program.Program { return strideFinite(64, 2048) }
	base := NewSystem(BaselineConfig(HWNone), build())
	baseRes := base.Run(1 << 62)
	opt := NewSystem(DefaultConfig(), build())
	optRes := opt.Run(1 << 62)
	if !base.Thread().Halted() || !opt.Thread().Halted() {
		t.Fatal("programs did not halt")
	}
	if baseRes.OrigInstrs != optRes.OrigInstrs {
		t.Fatalf("orig instr accounting: base %d, optimized %d",
			baseRes.OrigInstrs, optRes.OrigInstrs)
	}
	// The optimized run commits extra (inserted) instructions.
	if optRes.TracesFormed > 0 && optRes.Committed <= optRes.OrigInstrs {
		t.Log("note: no inserted instructions committed (acceptable if no insertion happened)")
	}
}

// strideFinite is a finite variant of strideWorkload.
func strideFinite(outer, n int) *program.Program {
	b := program.NewBuilder("finite", 0x1000, 0x1000000)
	arr := b.Alloc(uint64(n) * 64)
	b.Ldi(6, uint64(outer))
	b.Label("outer")
	b.Ldi(1, arr)
	b.Ldi(4, uint64(n))
	b.Label("top")
	b.Ld(2, 1, 0)
	b.Op(isa.ADD, 3, 3, 2)
	b.OpI(isa.ADDI, 1, 1, 64)
	b.OpI(isa.SUBI, 4, 4, 1)
	b.CondBr(isa.BNE, 4, "top")
	b.OpI(isa.SUBI, 6, 6, 1)
	b.CondBr(isa.BNE, 6, "outer")
	b.Halt()
	return b.MustBuild()
}

func TestOverheadModeNeverLinksTraces(t *testing.T) {
	p := strideWorkload(8192, 64, 2)
	cfg := DefaultConfig()
	cfg.LinkTraces = false
	sys := NewSystem(cfg, p)
	res := sys.Run(500_000)
	if res.TracesFormed == 0 {
		t.Fatal("overhead mode formed no traces")
	}
	// Execution never enters the code cache, so no load is ever "in a
	// trace" and no delinquent events fire — only formation work.
	if res.Mem.Loads == 0 {
		t.Fatal("no loads")
	}
	if res.MissesInTrace != 0 {
		t.Fatal("link-disabled run monitored in-trace loads")
	}
	if res.Mem.PrefetchesIssued != 0 {
		t.Fatal("link-disabled run executed prefetches")
	}
	// And the main thread must still be producing baseline-like IPC: the
	// only cost is interference. Compare with a plain baseline.
	base := NewSystem(BaselineConfig(HW8x8), strideWorkload(8192, 64, 2)).Run(500_000)
	slowdown := base.IPC() / res.IPC()
	if slowdown > 1.05 {
		t.Fatalf("overhead-mode slowdown = %.3f, want ~1.00x (<= 1.05)", slowdown)
	}
}

func TestHelperActivityFractionSmall(t *testing.T) {
	p := strideWorkload(16384, 64, 2)
	sys := NewSystem(DefaultConfig(), p)
	res := sys.Run(1_000_000)
	frac := res.HelperActiveFraction()
	if frac <= 0 {
		t.Fatal("helper never active")
	}
	if frac > 0.25 {
		t.Fatalf("helper active fraction = %.3f, implausibly high", frac)
	}
}

func TestPrefetchDistanceConverges(t *testing.T) {
	p := strideWorkload(131072, 64, 4)
	cfg := DefaultConfig()
	cfg.HW = HWNone
	sys := NewSystem(cfg, p)
	sys.Run(3_000_000)
	// The load at top (ld r2,0(r1)): its original PC is entry of the
	// hot loop. Find it via the optimizer's distance query across the
	// plausible heads.
	var best int64
	for pc := p.Base; pc < p.CodeEnd(); pc += isa.WordSize {
		for lpc := p.Base; lpc < p.CodeEnd(); lpc += isa.WordSize {
			if d := sys.Optimizer().Distance(pc, lpc); d > best {
				best = d
			}
		}
	}
	if best < 2 {
		t.Fatalf("prefetch distance never adapted beyond %d", best)
	}
}

func TestFigure6BreakdownSums(t *testing.T) {
	p := strideWorkload(16384, 64, 2)
	sys := NewSystem(DefaultConfig(), p)
	res := sys.Run(500_000)
	var sum uint64
	for _, c := range res.Mem.ByOutcome {
		sum += c
	}
	if sum != res.Mem.Loads {
		t.Fatalf("outcome sum %d != loads %d", sum, res.Mem.Loads)
	}
}

func TestEventQueueDropsAreBounded(t *testing.T) {
	p := strideWorkload(16384, 64, 2)
	sys := NewSystem(DefaultConfig(), p)
	res := sys.Run(500_000)
	if res.EventsRaised == 0 {
		t.Fatal("no events raised")
	}
	if res.EventsDropped > res.EventsRaised/2 {
		t.Fatalf("excessive event drops: %d of %d", res.EventsDropped, res.EventsRaised)
	}
}
