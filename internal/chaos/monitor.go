package chaos

import (
	"fmt"

	"tridentsp/internal/telemetry"
)

// Check is one invariant probe. Fn returns nil while the invariant holds
// and a descriptive error when it is violated. Checks are registered by
// the simulator core (closures over its subsystems), keeping this package
// free of upward dependencies.
type Check struct {
	Name string
	Fn   func(now int64) error
}

// Violation records one failed check.
type Violation struct {
	Check string
	At    int64
	Err   error
}

// String formats the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %v", v.At, v.Check, v.Err)
}

// Monitor is the watchdog that continuously verifies DESIGN §6 invariants
// while faults are being injected. It runs its checks every Every cycles
// (and on demand via RunChecks), accumulating violations instead of
// stopping the run, so a chaotic run reports every broken invariant at
// once.
type Monitor struct {
	// Every is the check period in cycles.
	Every int64

	checks     []Check
	nextAt     int64
	ticks      uint64
	violations []Violation
	tracer     *telemetry.Tracer
}

// NewMonitor creates a watchdog that probes every `every` cycles.
func NewMonitor(every int64) *Monitor {
	if every < 1 {
		every = 1
	}
	return &Monitor{Every: every, nextAt: every}
}

// Register adds an invariant check.
func (m *Monitor) Register(name string, fn func(now int64) error) {
	m.checks = append(m.checks, Check{Name: name, Fn: fn})
}

// NextAt returns the cycle of the next scheduled probe, so the simulation
// loop's hot path is one comparison.
func (m *Monitor) NextAt() int64 { return m.nextAt }

// Tick runs the checks if a probe is due at `now`.
func (m *Monitor) Tick(now int64) {
	if now < m.nextAt {
		return
	}
	for now >= m.nextAt {
		m.nextAt += m.Every
	}
	m.RunChecks(now)
}

// SetTracer attaches a telemetry tracer; each probe round emits a
// watchdog-probe event. A nil tracer (the default) is free.
func (m *Monitor) SetTracer(tr *telemetry.Tracer) { m.tracer = tr }

// RunChecks probes every registered invariant immediately.
func (m *Monitor) RunChecks(now int64) {
	m.ticks++
	found := 0
	for _, c := range m.checks {
		if err := c.Fn(now); err != nil {
			m.violations = append(m.violations, Violation{Check: c.Name, At: now, Err: err})
			found++
		}
	}
	m.tracer.Emit(telemetry.KindWatchdogProbe, now, 0, 0, int64(found), int64(len(m.violations)))
}

// Ticks counts completed probe rounds.
func (m *Monitor) Ticks() uint64 { return m.ticks }

// Violations returns every recorded invariant violation in order.
func (m *Monitor) Violations() []Violation { return m.violations }
