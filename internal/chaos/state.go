package chaos

import (
	"errors"
	"fmt"

	"tridentsp/internal/checkpoint"
)

// Checkpoint serialization (DESIGN §12). Schedules are immutable and travel
// as configuration, not state; only the per-System cursor (Run) and the
// watchdog's accumulated history (Monitor) serialize. A restored Run picks
// up mid-schedule by cursor position — the edges themselves are re-expanded
// from the shared Schedule at construction.

// SaveState serializes the cursor position.
func (r *Run) SaveState(e *checkpoint.Encoder) {
	e.Mark("chaos.run")
	e.Int(r.idx)
	e.U64(r.Applied)
}

// LoadState restores state saved by SaveState into a freshly started Run
// over the same Schedule.
func (r *Run) LoadState(d *checkpoint.Decoder) error {
	d.Expect("chaos.run")
	idx := d.Int()
	applied := d.U64()
	if d.Err() != nil {
		return d.Err()
	}
	if idx < 0 || idx > len(r.edges) {
		return fmt.Errorf("%w: chaos cursor %d outside schedule of %d edges",
			checkpoint.ErrCorrupt, idx, len(r.edges))
	}
	r.idx = idx
	r.Applied = applied
	return nil
}

// SaveState serializes the watchdog's probe cursor and violation history.
// Violations restore as opaque error strings — they are reporting payload,
// never matched programmatically.
func (m *Monitor) SaveState(e *checkpoint.Encoder) {
	e.Mark("chaos.monitor")
	e.I64(m.nextAt)
	e.U64(m.ticks)
	e.Len(len(m.violations))
	for _, v := range m.violations {
		e.Str(v.Check)
		e.I64(v.At)
		e.Str(v.Err.Error())
	}
}

// LoadState restores state saved by SaveState. The registered checks stay
// as constructed — they close over live structures and are not state.
func (m *Monitor) LoadState(d *checkpoint.Decoder) error {
	d.Expect("chaos.monitor")
	m.nextAt = d.I64()
	m.ticks = d.U64()
	n := d.Len()
	if d.Err() != nil {
		return d.Err()
	}
	m.violations = m.violations[:0]
	for i := 0; i < n; i++ {
		m.violations = append(m.violations, Violation{
			Check: d.Str(),
			At:    d.I64(),
			Err:   errors.New(d.Str()),
		})
	}
	return d.Err()
}
