// Package chaos provides deterministic, seeded fault injection for the
// simulated machine. The paper's headline claim is that the prefetcher is
// *self-repairing* (§3.5): the distance controller re-converges when its
// assumptions break. This package manufactures exactly those breaks — memory
// latency phase shifts and spikes, DLT and watch-table eviction storms,
// capacity squeezes, code-cache pressure that unlinks live traces, helper
// thread preemption, and abrupt working-set shifts — on a reproducible
// schedule, so the repair loop, trace back-out, and mature-clearing paths
// can be stressed and their recovery measured (exp.Resilience) and checked
// (Monitor).
//
// A Schedule is an immutable description: a preset expanded by a seeded
// deterministic generator into timed events. Each simulated System starts
// its own Run cursor over the schedule, so the same Config (including the
// same chaos seed) always perturbs the machine at the same cycles — two
// runs of one configuration are byte-identical, which the determinism
// regression test relies on.
//
// None of the faults change program semantics: they perturb timing and
// monitoring structures only, so architectural transparency (DESIGN §6)
// must survive every preset — that is what the Monitor's shadow-run check
// verifies.
package chaos

import (
	"fmt"
	"math"
	"sort"
)

// Kind classifies one fault.
type Kind uint8

// Fault kinds.
const (
	// LatencyShift multiplies the memory latency and bus occupancy by Arg
	// for the event's duration — a sustained phase change in the memory
	// system (DRAM contention, frequency scaling).
	LatencyShift Kind = iota
	// LatencySpike is a short, sharp LatencyShift (refresh storms, bursty
	// co-runners). Same mechanics, reported separately.
	LatencySpike
	// DLTFlush invalidates every delinquent-load-table entry at once: all
	// stride history, window counters, and mature flags are lost and the
	// controller must re-learn them.
	DLTFlush
	// DLTSqueeze clamps the DLT's effective associativity to Arg ways for
	// the duration — a capacity squeeze that forces eviction churn.
	DLTSqueeze
	// WatchEvict evicts the Arg oldest watch-table entries: executing hot
	// traces lose their timing history and optimization flags.
	WatchEvict
	// CodeCacheEvict unlinks Arg live traces (most recently placed first):
	// their heads are unpatched back to original code and all prefetch
	// state is dropped, forcing re-formation from scratch.
	CodeCacheEvict
	// HelperPreempt makes the spare hardware context unavailable for the
	// duration: in-flight optimization work is delayed and no new events
	// are dispatched — the optimizer context goes away mid-repair.
	HelperPreempt
	// CacheFlush invalidates the entire cache hierarchy — the memory-system
	// effect of an abrupt working-set shift (context switch, page
	// migration).
	CacheFlush

	numKinds
)

var kindNames = [...]string{
	LatencyShift:   "latency-shift",
	LatencySpike:   "latency-spike",
	DLTFlush:       "dlt-flush",
	DLTSqueeze:     "dlt-squeeze",
	WatchEvict:     "watch-evict",
	CodeCacheEvict: "code-cache-evict",
	HelperPreempt:  "helper-preempt",
	CacheFlush:     "cache-flush",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	// At is the cycle the fault fires.
	At int64
	// Duration is the window length for windowed faults (LatencyShift,
	// LatencySpike, DLTSqueeze, HelperPreempt); 0 for instantaneous ones.
	Duration int64
	// Arg is kind-specific: the latency multiplier, the squeezed
	// associativity, or the eviction count.
	Arg int64
}

// windowed reports whether the kind perturbs over an interval (and so needs
// a revert edge).
func (k Kind) windowed() bool {
	switch k {
	case LatencyShift, LatencySpike, DLTSqueeze, HelperPreempt:
		return true
	}
	return false
}

// Preset names a fault mix.
type Preset string

// Presets.
const (
	// PresetLatencyPhase: sustained memory-latency phase shifts plus short
	// spikes.
	PresetLatencyPhase Preset = "latency-phase"
	// PresetEvictionStorm: DLT flush bursts, DLT capacity squeezes,
	// watch-table evictions, and code-cache pressure.
	PresetEvictionStorm Preset = "eviction-storm"
	// PresetHelperPreemption: windows during which the optimizer's
	// hardware context is stolen.
	PresetHelperPreemption Preset = "helper-preemption"
	// PresetWorkloadShift: abrupt working-set shifts (full cache flush plus
	// DLT flush).
	PresetWorkloadShift Preset = "workload-shift"
	// PresetMonkey combines every fault class.
	PresetMonkey Preset = "monkey"
)

// Presets returns every preset name.
func Presets() []Preset {
	return []Preset{
		PresetLatencyPhase, PresetEvictionStorm,
		PresetHelperPreemption, PresetWorkloadShift, PresetMonkey,
	}
}

// Schedule is an immutable fault plan. Build one with NewSchedule (or
// assemble Events by hand for tests), attach it to core.Config, and every
// System constructed from that Config replays it identically.
type Schedule struct {
	Preset Preset
	Seed   uint64
	Events []Event // sorted by At
}

// MinHorizon is the shortest schedule horizon NewSchedule accepts. Fault
// plans over fewer cycles than this are degenerate: every preset's phases
// would collapse to zero-length strides.
const MinHorizon = 1000

// NewSchedule expands a preset into concrete events spread over roughly
// `horizon` cycles, deterministically derived from the seed.
func NewSchedule(preset Preset, seed uint64, horizon int64) (*Schedule, error) {
	// The generators stride through the horizon in fractions down to
	// horizon/16; a horizon too short to keep those strides positive would
	// loop forever appending events, so it is rejected, not clamped.
	if horizon < MinHorizon {
		return nil, fmt.Errorf("chaos: horizon %d too short (need >= %d cycles)", horizon, MinHorizon)
	}
	g := gen{state: seed*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3}
	var events []Event
	switch preset {
	case PresetLatencyPhase:
		events = latencyPhaseEvents(&g, horizon)
	case PresetEvictionStorm:
		events = evictionStormEvents(&g, horizon)
	case PresetHelperPreemption:
		events = helperPreemptionEvents(&g, horizon)
	case PresetWorkloadShift:
		events = workloadShiftEvents(&g, horizon)
	case PresetMonkey:
		events = append(events, latencyPhaseEvents(&g, horizon)...)
		events = append(events, evictionStormEvents(&g, horizon)...)
		events = append(events, helperPreemptionEvents(&g, horizon)...)
		events = append(events, workloadShiftEvents(&g, horizon)...)
	default:
		return nil, fmt.Errorf("chaos: unknown preset %q", preset)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	s := &Schedule{Preset: preset, Seed: seed, Events: events}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate rejects malformed schedules with descriptive errors.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if e.Kind >= numKinds {
			return fmt.Errorf("chaos: event %d has unknown kind %d", i, e.Kind)
		}
		if e.At < 0 {
			return fmt.Errorf("chaos: event %d (%s) fires at negative cycle %d", i, e.Kind, e.At)
		}
		if e.Duration < 0 {
			return fmt.Errorf("chaos: event %d (%s) has negative duration %d", i, e.Kind, e.Duration)
		}
		if e.Kind.windowed() && e.Duration == 0 {
			return fmt.Errorf("chaos: event %d (%s) is windowed but has zero duration", i, e.Kind)
		}
		switch e.Kind {
		case LatencyShift, LatencySpike:
			if e.Arg < 1 {
				return fmt.Errorf("chaos: event %d (%s) latency factor %d < 1", i, e.Kind, e.Arg)
			}
		case DLTSqueeze:
			if e.Arg < 1 {
				return fmt.Errorf("chaos: event %d (%s) associativity limit %d < 1", i, e.Kind, e.Arg)
			}
		case WatchEvict, CodeCacheEvict:
			if e.Arg < 1 {
				return fmt.Errorf("chaos: event %d (%s) eviction count %d < 1", i, e.Kind, e.Arg)
			}
		}
		if i > 0 && e.At < s.Events[i-1].At {
			return fmt.Errorf("chaos: events not sorted at index %d", i)
		}
	}
	return nil
}

// latencyPhaseEvents: ~5 sustained ×2..4 phases covering about half the run,
// plus ~10 short ×4..8 spikes.
func latencyPhaseEvents(g *gen, horizon int64) []Event {
	var out []Event
	period := horizon / 5
	for at := period / 2; at+period/2 < horizon; at += period {
		out = append(out, Event{
			Kind:     LatencyShift,
			At:       at + g.rng(-period/8, period/8),
			Duration: period/2 + g.rng(0, period/8),
			Arg:      2 + g.rng(0, 3),
		})
	}
	for i := int64(0); i < 10; i++ {
		out = append(out, Event{
			Kind:     LatencySpike,
			At:       g.rng(0, horizon),
			Duration: 2_000 + g.rng(0, 6_000),
			Arg:      4 + g.rng(0, 5),
		})
	}
	return clampAt(out)
}

// evictionStormEvents: DLT flush bursts, two long capacity squeezes,
// watch-table evictions, and code-cache pressure.
func evictionStormEvents(g *gen, horizon int64) []Event {
	var out []Event
	for at := horizon / 10; at < horizon; at += horizon/8 + g.rng(0, horizon/16) {
		// A storm is a burst of flushes in quick succession.
		burst := 2 + g.rng(0, 3)
		for b := int64(0); b < burst; b++ {
			out = append(out, Event{Kind: DLTFlush, At: at + b*g.rng(2_000, 10_000)})
		}
		out = append(out, Event{Kind: WatchEvict, At: at + g.rng(0, 5_000), Arg: 32 + g.rng(0, 224)})
	}
	for i := int64(0); i < 2; i++ {
		out = append(out, Event{
			Kind:     DLTSqueeze,
			At:       g.rng(horizon/8, horizon),
			Duration: horizon/10 + g.rng(0, horizon/10),
			Arg:      1,
		})
	}
	for at := horizon / 6; at < horizon; at += horizon/5 + g.rng(0, horizon/10) {
		out = append(out, Event{Kind: CodeCacheEvict, At: at, Arg: 2 + g.rng(0, 5)})
	}
	return clampAt(out)
}

// helperPreemptionEvents: the spare context disappears for windows covering
// roughly a third of the run.
func helperPreemptionEvents(g *gen, horizon int64) []Event {
	var out []Event
	period := horizon / 8
	for at := period; at < horizon; at += period + g.rng(0, period/2) {
		out = append(out, Event{
			Kind:     HelperPreempt,
			At:       at,
			Duration: period/3 + g.rng(0, period/3),
		})
	}
	return clampAt(out)
}

// workloadShiftEvents: abrupt working-set shifts — everything cached or
// learned about the old set is stale.
func workloadShiftEvents(g *gen, horizon int64) []Event {
	var out []Event
	for at := horizon / 4; at < horizon; at += horizon/4 + g.rng(0, horizon/8) {
		out = append(out, Event{Kind: CacheFlush, At: at})
		out = append(out, Event{Kind: DLTFlush, At: at + g.rng(0, 2_000)})
	}
	return clampAt(out)
}

// clampAt floors event times at cycle 1 (a fault at cycle 0 would race
// machine construction in no interesting way).
func clampAt(events []Event) []Event {
	for i := range events {
		if events[i].At < 1 {
			events[i].At = 1
		}
	}
	return events
}

// Edge is one application (Enter) or reversion (Exit) of an event, in time
// order.
type Edge struct {
	Event Event
	// Enter is true when the fault is applied, false when its window ends.
	Enter bool
	// At is the cycle this edge is due.
	At int64
}

// Run is a per-System cursor over a Schedule. Schedules are shared and
// immutable; every System starts its own Run so identical configurations
// replay identically.
type Run struct {
	edges []Edge
	idx   int

	// Applied counts edges delivered so far.
	Applied uint64
}

// Start expands the schedule's events into time-ordered edges and returns a
// fresh cursor.
func (s *Schedule) Start() *Run {
	edges := make([]Edge, 0, 2*len(s.Events))
	for _, e := range s.Events {
		edges = append(edges, Edge{Event: e, Enter: true, At: e.At})
		if e.Kind.windowed() {
			edges = append(edges, Edge{Event: e, Enter: false, At: e.At + e.Duration})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].At < edges[j].At })
	return &Run{edges: edges}
}

// NextAt returns the cycle of the next due edge (MaxInt64 when exhausted),
// so the simulation loop's hot path is one comparison.
func (r *Run) NextAt() int64 {
	if r.idx >= len(r.edges) {
		return math.MaxInt64
	}
	return r.edges[r.idx].At
}

// Due returns every edge due at or before now, advancing the cursor.
func (r *Run) Due(now int64) []Edge {
	start := r.idx
	for r.idx < len(r.edges) && r.edges[r.idx].At <= now {
		r.idx++
	}
	due := r.edges[start:r.idx]
	r.Applied += uint64(len(due))
	return due
}

// gen is a splitmix64 generator; math/rand is avoided so schedules are
// reproducible independent of the stdlib's generator evolution.
type gen struct{ state uint64 }

func (g *gen) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rng returns a uniform value in [lo, hi); it returns lo when the range is
// empty.
func (g *gen) rng(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + int64(g.next()%uint64(hi-lo))
}
