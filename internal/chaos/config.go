package chaos

// Config bundles the user-facing chaos knobs so front ends can validate a
// requested schedule before building any machinery. Zero Preset means "no
// chaos" and always validates.
type Config struct {
	Preset  Preset
	Seed    uint64
	Horizon int64
}

// Enabled reports whether the config names a preset at all.
func (c Config) Enabled() bool { return c.Preset != "" }

// Validate checks the preset name and horizon without retaining the
// expanded schedule. It returns nil for a disabled config.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	_, err := NewSchedule(c.Preset, c.Seed, c.Horizon)
	return err
}

// Schedule expands the config into a runnable schedule, or (nil, nil) for a
// disabled config.
func (c Config) Schedule() (*Schedule, error) {
	if !c.Enabled() {
		return nil, nil
	}
	return NewSchedule(c.Preset, c.Seed, c.Horizon)
}
