package chaos

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestNewScheduleDeterministic(t *testing.T) {
	for _, preset := range Presets() {
		a, err := NewSchedule(preset, 42, 1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		b, err := NewSchedule(preset, 42, 1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different schedules", preset)
		}
		if len(a.Events) == 0 {
			t.Errorf("%s: empty schedule", preset)
		}
		c, err := NewSchedule(preset, 43, 1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if reflect.DeepEqual(a.Events, c.Events) {
			t.Errorf("%s: different seeds produced identical events", preset)
		}
	}
}

func TestNewScheduleRejectsBadInput(t *testing.T) {
	if _, err := NewSchedule(PresetMonkey, 1, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewSchedule(Preset("nope"), 1, 1000); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"unknown kind", Event{Kind: numKinds, At: 1}},
		{"negative time", Event{Kind: DLTFlush, At: -1}},
		{"negative duration", Event{Kind: LatencyShift, At: 1, Duration: -5, Arg: 2}},
		{"windowed zero duration", Event{Kind: HelperPreempt, At: 1}},
		{"latency factor zero", Event{Kind: LatencySpike, At: 1, Duration: 10, Arg: 0}},
		{"squeeze zero ways", Event{Kind: DLTSqueeze, At: 1, Duration: 10, Arg: 0}},
		{"evict zero count", Event{Kind: WatchEvict, At: 1, Arg: 0}},
	}
	for _, c := range cases {
		s := &Schedule{Events: []Event{c.ev}}
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	unsorted := &Schedule{Events: []Event{
		{Kind: DLTFlush, At: 100},
		{Kind: DLTFlush, At: 50},
	}}
	if err := unsorted.Validate(); err == nil {
		t.Error("unsorted events accepted")
	}
	ok := &Schedule{Events: []Event{
		{Kind: DLTFlush, At: 50},
		{Kind: LatencyShift, At: 100, Duration: 200, Arg: 3},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestRunCursorEdges(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: LatencyShift, At: 100, Duration: 50, Arg: 2}, // exit at 150
		{Kind: DLTFlush, At: 120},
	}}
	r := s.Start()
	if got := r.NextAt(); got != 100 {
		t.Fatalf("NextAt = %d, want 100", got)
	}
	if due := r.Due(99); len(due) != 0 {
		t.Fatalf("premature edges: %v", due)
	}
	due := r.Due(120)
	if len(due) != 2 || !due[0].Enter || due[0].Event.Kind != LatencyShift ||
		!due[1].Enter || due[1].Event.Kind != DLTFlush {
		t.Fatalf("edges at 120: %+v", due)
	}
	due = r.Due(10_000)
	if len(due) != 1 || due[0].Enter || due[0].Event.Kind != LatencyShift || due[0].At != 150 {
		t.Fatalf("exit edge: %+v", due)
	}
	if got := r.NextAt(); got != math.MaxInt64 {
		t.Fatalf("exhausted NextAt = %d", got)
	}
	if r.Applied != 3 {
		t.Fatalf("Applied = %d, want 3", r.Applied)
	}

	// A second cursor over the same schedule replays identically.
	r2 := s.Start()
	if got := len(r2.Due(10_000)); got != 3 {
		t.Fatalf("fresh cursor saw %d edges, want 3", got)
	}
}

func TestInstantaneousEventsHaveNoExitEdge(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: CacheFlush, At: 10},
		{Kind: CodeCacheEvict, At: 20, Arg: 1},
		{Kind: WatchEvict, At: 30, Arg: 4},
		{Kind: DLTFlush, At: 40},
	}}
	r := s.Start()
	due := r.Due(1_000)
	if len(due) != 4 {
		t.Fatalf("got %d edges, want 4 (no exits for instantaneous faults)", len(due))
	}
	for _, ed := range due {
		if !ed.Enter {
			t.Errorf("instantaneous fault %s produced an exit edge", ed.Event.Kind)
		}
	}
}

func TestMonitorRecordsViolations(t *testing.T) {
	m := NewMonitor(100)
	healthy := true
	m.Register("flaky", func(now int64) error {
		if healthy {
			return nil
		}
		return errors.New("broke")
	})
	m.Tick(50) // not due yet
	if m.Ticks() != 0 {
		t.Fatalf("premature tick")
	}
	m.Tick(100)
	healthy = false
	m.Tick(199) // not due
	m.Tick(250)
	m.Tick(300)
	if m.Ticks() != 3 {
		t.Fatalf("Ticks = %d, want 3", m.Ticks())
	}
	vs := m.Violations()
	if len(vs) != 2 {
		t.Fatalf("violations = %d, want 2", len(vs))
	}
	if vs[0].Check != "flaky" || vs[0].At != 250 {
		t.Errorf("violation[0] = %+v", vs[0])
	}
	if vs[0].String() == "" {
		t.Error("empty violation string")
	}
}

func TestPresetEventTimesWithinHorizon(t *testing.T) {
	const horizon = 500_000
	for _, preset := range Presets() {
		s, err := NewSchedule(preset, 7, horizon)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		for _, e := range s.Events {
			if e.At < 1 || e.At > horizon+horizon/2 {
				t.Errorf("%s: event %s at %d far outside horizon %d", preset, e.Kind, e.At, horizon)
			}
		}
	}
}

// TestDegenerateHorizonRejected guards the generator stride math: horizons
// shorter than MinHorizon once sent latencyPhaseEvents into a zero-stride
// loop that appended events forever.
func TestDegenerateHorizonRejected(t *testing.T) {
	for _, h := range []int64{1, 2, 999} {
		if _, err := NewSchedule(PresetMonkey, 1, h); err == nil {
			t.Errorf("horizon %d accepted", h)
		}
	}
	if _, err := NewSchedule(PresetMonkey, 1, MinHorizon); err != nil {
		t.Errorf("horizon %d rejected: %v", MinHorizon, err)
	}
}
