// Package tridentsp is the public API of this reproduction of "A Self-
// Repairing Prefetcher in an Event-Driven Dynamic Optimization Framework"
// (Zhang, Calder, Tullsen — CGO 2006).
//
// The package exposes the simulated machine (an SMT core with the paper's
// Table 1 memory hierarchy and stream-buffer prefetcher, plus the Trident
// dynamic optimization framework with the self-repairing prefetch
// optimizer), the fourteen synthetic benchmarks standing in for the paper's
// SPEC selection, the experiment harness that regenerates every figure of
// the evaluation, and a small assembler for writing custom workloads.
//
// Quick start:
//
//	bm, _ := tridentsp.Benchmark("mcf")
//	prog := bm.Build(tridentsp.ScaleFull)
//	res := tridentsp.Run(tridentsp.DefaultConfig(), prog, 2_000_000)
//	fmt.Println(res.String())
//
// Compare configurations:
//
//	base := tridentsp.Run(tridentsp.BaselineConfig(tridentsp.HW8x8), prog, n)
//	opt := tridentsp.Run(tridentsp.DefaultConfig(), prog, n)
//	fmt.Printf("speedup %.2fx\n", tridentsp.Speedup(opt, base))
//
// Regenerate a paper figure:
//
//	tbl := tridentsp.Experiments()[4].Run(tridentsp.ExpOptions{})
//	fmt.Print(tbl.Render())
package tridentsp

import (
	"tridentsp/internal/asm"
	"tridentsp/internal/core"
	"tridentsp/internal/exp"
	"tridentsp/internal/program"
	"tridentsp/internal/workloads"
)

// Config describes one simulated machine; see core.Config for every knob.
type Config = core.Config

// System is a runnable machine instance.
type System = core.System

// Results summarizes one run.
type Results = core.Results

// HWPrefetch selects the hardware stream-buffer configuration.
type HWPrefetch = core.HWPrefetch

// SWMode selects the dynamic software prefetching scheme.
type SWMode = core.SWMode

// Hardware and software prefetching configurations (paper Figures 2 and 5).
const (
	HWNone = core.HWNone
	HW4x4  = core.HW4x4
	HW8x8  = core.HW8x8

	SWOff         = core.SWOff
	SWBasic       = core.SWBasic
	SWWholeObject = core.SWWholeObject
	SWSelfRepair  = core.SWSelfRepair
)

// DefaultConfig is the paper's evaluated machine: Table 1 core and memory,
// 8x8 stream buffers, Trident with self-repairing software prefetching.
func DefaultConfig() Config { return core.DefaultConfig() }

// BaselineConfig is a hardware-prefetching-only machine without Trident.
func BaselineConfig(hw HWPrefetch) Config { return core.BaselineConfig(hw) }

// Program is an executable image for the simulator.
type Program = program.Program

// Builder constructs programs programmatically.
type Builder = program.Builder

// NewBuilder creates a program builder with the given code and data bases.
func NewBuilder(name string, codeBase, dataBase uint64) *Builder {
	return program.NewBuilder(name, codeBase, dataBase)
}

// Assemble translates assembler source text into a program (see
// internal/asm for the syntax).
func Assemble(name, src string) (*Program, error) { return asm.Assemble(name, src) }

// MustAssemble is Assemble that panics on error.
func MustAssemble(name, src string) *Program { return asm.MustAssemble(name, src) }

// NewSystem builds a machine for a program.
func NewSystem(cfg Config, p *Program) *System { return core.NewSystem(cfg, p) }

// Run builds a machine and executes it until `instrs` original-program
// instructions have committed (or the program halts).
func Run(cfg Config, p *Program, instrs uint64) Results {
	return core.NewSystem(cfg, p).Run(instrs)
}

// Speedup is r's IPC relative to baseline's.
func Speedup(r, baseline Results) float64 { return core.Speedup(r, baseline) }

// Scale selects a workload's working-set size.
type Scale = workloads.Scale

// Workload scales.
const (
	ScaleTest  = workloads.ScaleTest
	ScaleSmall = workloads.ScaleSmall
	ScaleFull  = workloads.ScaleFull
)

// Workload is one synthetic benchmark.
type Workload = workloads.Benchmark

// Benchmarks returns the fourteen synthetic benchmarks in the paper's
// order.
func Benchmarks() []Workload { return workloads.All() }

// Benchmark finds a benchmark by name (e.g. "mcf").
func Benchmark(name string) (Workload, bool) { return workloads.ByName(name) }

// ExpOptions scales an experiment run.
type ExpOptions = exp.Options

// ExpTable is a rendered experiment result.
type ExpTable = exp.Table

// Experiment regenerates one of the paper's tables or figures.
type Experiment = exp.Experiment

// Experiments returns every experiment of the paper's evaluation section in
// order (Figure 2 through Figure 9, plus the §5.1 overhead and §5.4
// extra-cache controls).
func Experiments() []Experiment { return exp.All() }

// ExperimentByID finds an experiment ("fig2".."fig9", "overhead",
// "extracache").
func ExperimentByID(id string) (Experiment, bool) { return exp.ByID(id) }
