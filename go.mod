module tridentsp

go 1.22
