#!/bin/sh
# Benchmark snapshot: runs the per-figure benches (bench_test.go) with
# -benchmem and emits one JSON document recording ns/op, B/op, allocs/op,
# and every custom metric per bench. Checked-in snapshots start the repo's
# performance trajectory:
#
#   scripts/bench.sh                     # writes BENCH_<yyyymmdd>.json
#   scripts/bench.sh BENCH_after.json    # explicit output name
#   BENCHTIME=5x scripts/bench.sh       # more iterations (default 1x)
#   BENCHFILTER=Figure5 scripts/bench.sh # subset of benches
#   scripts/bench.sh BENCH_pr8_sampled.json  # sampled-mode bench family
#
# Snapshot naming convention: BENCH_baseline.json is the seed,
# BENCH_after.json the first perf PR, BENCH_prN.json each later perf PR.
# Sampled-mode benches (BenchmarkSampled*, internal/sampling) are a separate
# snapshot family: an output name containing "_sampled" enables them (they
# self-skip otherwise) and points the run at the sampling package, so
# exact-mode snapshots never mix with sampled numbers — and the exact-mode
# test binary never links the sampling package, keeping its code layout
# (and thus ns/op) comparable across snapshots. benchdiff's auto-pick skips
# the sampled family by default; gate it with benchdiff -sampled. Sampled
# snapshots record host_cpus and the swept -sample-jobs values in the
# header: the parallel scheduler's jobs=N sub-benchmarks only show speedup
# when N has cores to spread over, so a reader needs the host width to
# interpret the ratios.
# Compare two snapshots with cmd/benchdiff (non-zero exit on regression):
#
#   go run ./cmd/benchdiff BENCH_after.json BENCH_pr3.json
#
# or by eye with jq, e.g.:
#
#   jq -r '.benchmarks[] | "\(.name) \(.allocs_per_op)"' BENCH_baseline.json
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%Y%m%d).json}"
benchtime="${BENCHTIME:-1x}"
sampledmeta=""
case "$out" in
*_sampled*)
	filter="${BENCHFILTER:-Sampled}"
	pkg="./internal/sampling"
	export BENCH_SAMPLED=1
	# The jobs values swept by the Sampled benches' sub-benchmarks; kept in
	# the header so the snapshot is self-describing alongside host_cpus.
	sampledmeta='"sample_jobs": [1, 2, 8], '
	;;
*)
	filter="${BENCHFILTER:-.}"
	pkg="."
	;;
esac

raw=$(go test -run '^$' -bench "$filter" -benchmem -benchtime "$benchtime" "$pkg")

printf '%s\n' "$raw" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v gover="$(go env GOVERSION)" -v benchtime="$benchtime" \
	-v ncpu="$(nproc 2>/dev/null || sysctl -n hw.ncpu)" \
	-v sampledmeta="$sampledmeta" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  %s\"host_cpus\": %d,\n  \"benchmarks\": [", date, gover, benchtime, sampledmeta, ncpu
	n = 0
}
/^Benchmark/ && /ns\/op/ {
	# Benchmark<Name>-<procs>  <iters>  <ns> ns/op  [<metric> <unit>]...  <B> B/op  <allocs> allocs/op
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ","
	printf "\n    {\n      \"name\": \"%s\",\n      \"iterations\": %s", name, $2
	for (i = 3; i < NF; i++) {
		unit = $(i + 1)
		if (unit == "ns/op") printf ",\n      \"ns_per_op\": %s", $i
		else if (unit == "B/op") printf ",\n      \"bytes_per_op\": %s", $i
		else if (unit == "allocs/op") printf ",\n      \"allocs_per_op\": %s", $i
		else {
			key = unit
			gsub(/[^A-Za-z0-9_]/, "_", key)
			printf ",\n      \"%s\": %s", key, $i
		}
		i++
	}
	printf "\n    }"
}
END { printf "\n  ]\n}\n" }
' >"$out"

echo "wrote $out"
