#!/bin/sh
# Full local gate: compile everything, vet, and run the whole test suite
# under the race detector. The simulator is single-goroutine by design but
# the experiment harness fans runs across goroutines, so -race guards both
# the chaos harness/shadow runs and the worker pool against hidden sharing.
#
# For performance work, scripts/bench.sh emits a BENCH_<date>.json snapshot
# of the per-figure benchmarks. Snapshot naming: BENCH_baseline.json is the
# seed, BENCH_after.json the first perf PR, BENCH_prN.json each later perf
# PR; compare any two with cmd/benchdiff.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# The no-shared-state rule the parallel harness relies on, checked first for
# fast failure, then the full suite.
go test -race -run TestConcurrentSystemsShareNothing ./internal/core/
go test -race ./...
# JIT tier legs. The differential suite under -race with the JIT engaged:
# the fuzz oracle runs slow vs batch vs JIT (threshold 0 — compiled chains
# resident everywhere, including across a mid-run PatchImm), and the fast-path
# and sentinel suites cover promotion, quarantine, and restore at the stock
# threshold. Then a compile-everything smoke at the binary boundary: a
# -jit-threshold=0 run must finish clean and report byte-identically to the
# reference loop.
go test -race -run 'TestFastPath|TestSentinel|FuzzFastPathDifferential' ./internal/core/
go test -race -run 'TestEngineReportIdentity|TestKillResumeDeterminism' ./cmd/tridentsim/
go run ./cmd/tridentsim -bench swim,mcf,art -scale small -instrs 400000 -jit-threshold 0 > /tmp/jit0.out
go run ./cmd/tridentsim -bench swim,mcf,art -scale small -instrs 400000 -slowpath | diff /tmp/jit0.out -
# Golden-trace conformance, twice in one process: -count=2 re-runs every
# workload against the checked-in streams, so a run that mutates shared
# state (and would only diverge on the second pass) still fails.
go test -run Golden -count=2 ./internal/exp/
# Coverage floor for the telemetry spine: the tracer is the repo's
# conformance oracle, so its own package stays thoroughly tested.
go test -coverprofile=/tmp/telemetry.cover ./internal/telemetry/
go tool cover -func=/tmp/telemetry.cover | awk '
	/^total:/ {
		pct = $3 + 0
		printf "internal/telemetry coverage: %.1f%% (floor 70%%)\n", pct
		if (pct < 70) exit 1
	}'
# Checkpoint torture: truncation at every byte boundary, bit flips at every
# position, and kill-mid-write must all fail loudly, never load garbage.
go test -run 'TestFileTorture|TestFileKillMidWrite' -count=2 ./internal/checkpoint/
# Parallel window scheduler race leg (DESIGN §15): the producer/worker/
# reconciler pipeline and the singleflight ROI cache are the repo's only
# intentionally concurrent simulator internals, so their byte-identity and
# resume tests run under -race explicitly (fast failure; go test -race ./...
# above covers them again in the full sweep).
go test -race -run 'TestParallelMatchesSerial|TestSampledResumeDeterminism|TestROILoadOrBuildSingleflight' ./internal/sampling/
# Sampled-mode smoke (DESIGN §14, §15): one workload under interval sampling
# with an ROI cache, checkpointed; then the same schedule fanned across 8
# window workers, and finally a resume from the serial run's checkpoint at
# jobs=8 (-sample-jobs is excluded from checkpoint identity). All three
# reports must be byte-identical — cache and speculation logistics go to
# stderr precisely so these diffs hold.
smokedir=$(mktemp -d)
go run ./cmd/tridentsim -bench mcf -scale small -instrs 2000000 -sample \
	-sample-interval 500000 -sample-startup 500000 -roi-cache "$smokedir/roi" \
	-checkpoint-every 400000 -checkpoint-dir "$smokedir/ckpt" > "$smokedir/sampled.out"
go run ./cmd/tridentsim -bench mcf -scale small -instrs 2000000 -sample \
	-sample-interval 500000 -sample-startup 500000 -roi-cache "$smokedir/roi" \
	-sample-jobs 8 | diff "$smokedir/sampled.out" -
go run ./cmd/tridentsim -bench mcf -scale small -instrs 2000000 -sample \
	-sample-interval 500000 -sample-startup 500000 -roi-cache "$smokedir/roi" \
	-sample-jobs 8 -restore "$smokedir/ckpt/mcf.ckpt" | diff "$smokedir/sampled.out" -
rm -rf "$smokedir"
# One-iteration bench smoke: keeps the benchmark path compiling and running.
go test -run '^$' -bench BenchmarkFigure5 -benchtime 1x .
# benchdiff gate over the two newest checked-in snapshots (benchdiff's
# auto-pick: version sort orders BENCH_pr9 < BENCH_pr10, baseline/after
# predate the prN series, and BENCH_*_sampled.json snapshots are excluded):
# exercises the comparison tool and asserts the committed perf trajectory
# has no >5% ns/op regression step, without editing this script per PR.
go run ./cmd/benchdiff -threshold 0.05
# Durability must be free when off: the sentinel gate and checkpoint hooks
# sit on the hot simulation loop, so PR6 holds the figure benches within 1%
# of the pre-durability snapshot.
go run ./cmd/benchdiff -threshold 0.01 BENCH_pr5.json BENCH_pr6.json
# The JIT tier's perf contract (PR7): no figure bench regresses past the 1%
# gate versus the pre-JIT snapshot, and the machine-readable output carries
# the same verdict the table mode gates on.
go run ./cmd/benchdiff -threshold 0.01 -json BENCH_pr6.json BENCH_pr7.json | grep '"regressed": false'
# Sampled-family gate: -sampled flips auto-pick to BENCH_*_sampled.json so
# the sampled benches track their own history. PR9 split the bench into
# jobs=N sub-benchmarks, so the pr8->pr9 comparison has no matched pairs and
# gates nothing yet; real gating starts with the next sampled snapshot.
go run ./cmd/benchdiff -sampled -threshold 0.10
# Prefetch arsenal legs (DESIGN §16): the conformance suite and the selector
# determinism oracle under -race (the selector sits on the memsys hot path
# the parallel harnesses all share), then fast-vs-slowpath byte-identity
# smokes at the binary boundary for both a static arsenal backend and the
# online selector — the contract that epoch switch points derive from the
# committed load stream, not the execution engine.
go test -race ./internal/hwpref/
go test -race -run 'FuzzSelectorDeterminism|TestRestoreRejectsMismatchedArsenal|TestArsenalFlagValidation' \
	./internal/core/ ./cmd/tridentsim/
go run ./cmd/tridentsim -bench swim,mcf,art -scale small -instrs 400000 -hw stride > /tmp/hwstride.out
go run ./cmd/tridentsim -bench swim,mcf,art -scale small -instrs 400000 -hw stride -slowpath | diff /tmp/hwstride.out -
go run ./cmd/tridentsim -bench swim,mcf,art -scale small -instrs 400000 -hw selector > /tmp/hwsel.out
go run ./cmd/tridentsim -bench swim,mcf,art -scale small -instrs 400000 -hw selector -slowpath | diff /tmp/hwsel.out -
