#!/bin/sh
# Full local gate: compile everything, vet, and run the whole test suite
# under the race detector. The simulator is single-goroutine by design but
# the experiment harness fans runs across goroutines, so -race guards both
# the chaos harness/shadow runs and the worker pool against hidden sharing.
#
# For performance work, scripts/bench.sh emits a BENCH_<date>.json snapshot
# of the per-figure benchmarks to diff against the checked-in
# BENCH_baseline.json / BENCH_after.json.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# The no-shared-state rule the parallel harness relies on, checked first for
# fast failure, then the full suite.
go test -race -run TestConcurrentSystemsShareNothing ./internal/core/
go test -race ./...
# One-iteration bench smoke: keeps the benchmark path compiling and running.
go test -run '^$' -bench BenchmarkFigure5 -benchtime 1x .
