#!/bin/sh
# Full local gate: compile everything, vet, and run the whole test suite
# under the race detector. The simulator is single-goroutine by design but
# the experiment harness fans runs across goroutines, so -race guards both
# the chaos harness/shadow runs and the worker pool against hidden sharing.
#
# For performance work, scripts/bench.sh emits a BENCH_<date>.json snapshot
# of the per-figure benchmarks. Snapshot naming: BENCH_baseline.json is the
# seed, BENCH_after.json the first perf PR, BENCH_prN.json each later perf
# PR; compare any two with cmd/benchdiff.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# The no-shared-state rule the parallel harness relies on, checked first for
# fast failure, then the full suite.
go test -race -run TestConcurrentSystemsShareNothing ./internal/core/
go test -race ./...
# One-iteration bench smoke: keeps the benchmark path compiling and running.
go test -run '^$' -bench BenchmarkFigure5 -benchtime 1x .
# benchdiff smoke over the two newest checked-in snapshots: exercises the
# comparison tool and asserts the committed perf trajectory has no >5%
# ns/op regression step.
go run ./cmd/benchdiff -threshold 0.05 BENCH_after.json BENCH_pr3.json
