#!/bin/sh
# Full local gate: compile everything, vet, and run the whole test suite
# under the race detector. The simulator is single-goroutine by design, so
# -race is a cheap way to prove the chaos harness and shadow runs introduced
# no hidden sharing.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
